//! Uniform JSON emitter for the harness binaries.
//!
//! Every bench's `--json` mode routes through this module so all
//! machine-readable output shares one escaping/formatting discipline
//! (and one set of bugs). The builder renders eagerly into a string —
//! no value tree, no allocator games — and the result is guaranteed to
//! satisfy [`crate::json::validate`], which `verify.sh` runs over every
//! binary's output.
//!
//! ```
//! use dfs_bench::emit::Obj;
//! let s = Obj::new()
//!     .field("bench", "t0_example")
//!     .field("ops", 128u64)
//!     .field("ratio", 1.5f64)
//!     .field_arr("sweep", [1u64, 2, 4].iter())
//!     .render();
//! assert!(dfs_bench::json::validate(&s).is_ok());
//! ```

use std::fmt::Write as _;

/// Renders one value as JSON. Implemented for the primitive types the
/// benches actually report; nested objects go through [`Obj`].
pub trait ToJson {
    /// Appends this value's JSON rendering to `out`.
    fn write_json(&self, out: &mut String);
}

macro_rules! int_to_json {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn write_json(&self, out: &mut String) {
                let _ = write!(out, "{self}");
            }
        }
    )*};
}
int_to_json!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ToJson for bool {
    fn write_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl ToJson for f64 {
    /// Finite floats render with Rust's shortest-roundtrip `Display`
    /// (always valid JSON); NaN and infinities become `null`, which is
    /// the only honest JSON spelling for "not a number".
    fn write_json(&self, out: &mut String) {
        if self.is_finite() {
            let _ = write!(out, "{self}");
        } else {
            out.push_str("null");
        }
    }
}

impl ToJson for &str {
    fn write_json(&self, out: &mut String) {
        write_str(out, self);
    }
}

impl ToJson for String {
    fn write_json(&self, out: &mut String) {
        write_str(out, self);
    }
}

impl ToJson for Obj {
    fn write_json(&self, out: &mut String) {
        out.push_str(&self.buf);
        out.push('}');
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn write_json(&self, out: &mut String) {
        (**self).write_json(out);
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn write_json(&self, out: &mut String) {
        match self {
            Some(v) => v.write_json(out),
            None => out.push_str("null"),
        }
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON object under construction. Keys render in insertion order;
/// the builder never re-escapes or reorders, so the same field sequence
/// always produces byte-identical output — the property the scenario
/// replay check (`EXPERIMENTS.md` T17) leans on.
#[derive(Clone, Debug)]
pub struct Obj {
    /// Rendered content so far, starting with `{`; `render` closes it.
    buf: String,
    first: bool,
}

impl Default for Obj {
    fn default() -> Obj {
        Obj::new()
    }
}

impl Obj {
    /// Starts an empty object.
    pub fn new() -> Obj {
        Obj { buf: String::from("{"), first: true }
    }

    fn key(&mut self, key: &str) {
        if !self.first {
            self.buf.push_str(", ");
        }
        self.first = false;
        write_str(&mut self.buf, key);
        self.buf.push_str(": ");
    }

    /// Appends `key: value`.
    pub fn field(mut self, key: &str, value: impl ToJson) -> Self {
        self.key(key);
        value.write_json(&mut self.buf);
        self
    }

    /// Appends `key: [values…]` from an iterator.
    pub fn field_arr<T: ToJson>(mut self, key: &str, values: impl Iterator<Item = T>) -> Self {
        self.key(key);
        self.buf.push('[');
        for (i, v) in values.enumerate() {
            if i > 0 {
                self.buf.push_str(", ");
            }
            v.write_json(&mut self.buf);
        }
        self.buf.push(']');
        self
    }

    /// Appends `key` with pre-rendered JSON (caller guarantees validity
    /// — escape hatch for hand-assembled fragments).
    pub fn field_raw(mut self, key: &str, json: &str) -> Self {
        self.key(key);
        self.buf.push_str(json);
        self
    }

    /// Closes the object and returns the JSON text.
    pub fn render(self) -> String {
        let mut buf = self.buf;
        buf.push('}');
        buf
    }
}

/// Renders a standalone JSON array from an iterator (top-level sweeps).
pub fn arr<T: ToJson>(values: impl Iterator<Item = T>) -> String {
    let mut out = String::from("[");
    for (i, v) in values.enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        v.write_json(&mut out);
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn objects_render_valid_json_in_field_order() {
        let s = Obj::new()
            .field("bench", "demo")
            .field("n", 42u64)
            .field("neg", -3i64)
            .field("ok", true)
            .field("x", 1.5f64)
            .field("nan", f64::NAN)
            .field("none", Option::<u64>::None)
            .field("nested", Obj::new().field("k", "v"))
            .field_arr("seq", [1u64, 2, 3].iter())
            .render();
        crate::json::validate(&s).expect("emitter output must parse");
        assert_eq!(
            s,
            "{\"bench\": \"demo\", \"n\": 42, \"neg\": -3, \"ok\": true, \"x\": 1.5, \
             \"nan\": null, \"none\": null, \"nested\": {\"k\": \"v\"}, \"seq\": [1, 2, 3]}"
        );
    }

    #[test]
    fn strings_escape_quotes_backslashes_and_controls() {
        let s = Obj::new().field("k", "a\"b\\c\nd\u{1}").render();
        crate::json::validate(&s).expect("escaped output must parse");
        assert_eq!(s, "{\"k\": \"a\\\"b\\\\c\\nd\\u0001\"}");
    }

    #[test]
    fn arrays_of_objects_compose() {
        let rows = arr((0..2u64).map(|i| Obj::new().field("i", i)));
        assert_eq!(rows, "[{\"i\": 0}, {\"i\": 1}]");
        crate::json::validate(&rows).unwrap();
    }
}
