//! T3 — §5.4: the consistency/network-load spectrum.
//!
//! One writer updates a shared file once per simulated second; one
//! reader polls it once per 100 ms. NFS (3 s TTL) serves stale data and
//! still burns RPCs; AFS is fresh only at close boundaries; DFS tokens
//! are always fresh with traffic only at real handoffs.

use dfs_baselines::{AfsClient, AfsServer, NfsClient, NfsServer};
use dfs_bench::emit::{arr, Obj};
use dfs_bench::{header, row};
use dfs_disk::{DiskConfig, SimDisk};
use dfs_episode::{Episode, FormatParams};
use dfs_rpc::Network;
use dfs_types::{ClientId, ServerId, SimClock, VolumeId};
use dfs_vfs::PhysicalFs;
use std::sync::Arc;

const ROUNDS: u64 = 60; // Simulated seconds of the workload.

struct Outcome {
    rpcs: u64,
    bytes: u64,
    stale_reads: u64,
    reads: u64,
    /// RPCs during a 60 s idle phase (reader polls, writer silent) —
    /// the paper's point that NFS pays "whether or not any shared data
    /// have been modified".
    idle_rpcs: u64,
}

fn episode_on(net: &Network, clock: &SimClock) -> Arc<dyn PhysicalFs> {
    let disk = SimDisk::new(DiskConfig::with_blocks(32 * 1024));
    let ep = Episode::format(disk, clock.clone(), FormatParams::default()).unwrap();
    ep.create_volume(VolumeId(1), "v").unwrap();
    let _ = net;
    ep
}

fn run_nfs() -> Outcome {
    let clock = SimClock::new();
    let net = Network::new(clock.clone(), 500);
    let phys = episode_on(&net, &clock);
    let vol = phys.mount(VolumeId(1)).unwrap();
    NfsServer::start(&net, ServerId(1), vol);
    let writer = NfsClient::new(net.clone(), ClientId(1), ServerId(1));
    let reader = NfsClient::new(net.clone(), ClientId(2), ServerId(1));
    let root = writer.root(VolumeId(1)).unwrap();
    let f = writer.create(root, "shared", 0o666).unwrap();
    writer.write(f.fid, 0, &0u64.to_le_bytes()).unwrap();
    let before = net.stats();
    let (mut stale, mut reads) = (0u64, 0u64);
    for second in 1..=ROUNDS {
        writer.write(f.fid, 0, &second.to_le_bytes()).unwrap();
        for _ in 0..10 {
            clock.advance_millis(100);
            let bytes = reader.read(f.fid, 0, 8).unwrap();
            let seen = u64::from_le_bytes(bytes.try_into().unwrap());
            reads += 1;
            if seen != second {
                stale += 1;
            }
        }
    }
    let d = net.stats().since(&before);
    // Idle phase: no writes; the reader keeps polling for 60 s.
    let before_idle = net.stats();
    for _ in 0..600 {
        clock.advance_millis(100);
        reader.read(f.fid, 0, 8).unwrap();
    }
    let idle = net.stats().since(&before_idle);
    Outcome { rpcs: d.calls, bytes: d.bytes, stale_reads: stale, reads, idle_rpcs: idle.calls }
}

fn run_afs() -> Outcome {
    let clock = SimClock::new();
    let net = Network::new(clock.clone(), 500);
    let phys = episode_on(&net, &clock);
    let vol = phys.mount(VolumeId(1)).unwrap();
    AfsServer::start(&net, ServerId(1), vol);
    let writer = AfsClient::start(net.clone(), ClientId(1), ServerId(1));
    let reader = AfsClient::start(net.clone(), ClientId(2), ServerId(1));
    let root = writer.root(VolumeId(1)).unwrap();
    let f = writer.create(root, "shared", 0o666).unwrap();
    writer.write(f.fid, 0, &0u64.to_le_bytes()).unwrap();
    writer.close(f.fid).unwrap();
    let before = net.stats();
    let (mut stale, mut reads) = (0u64, 0u64);
    for second in 1..=ROUNDS {
        // The writer holds the file open across the second and closes
        // at the end of it — store-on-close semantics.
        writer.write(f.fid, 0, &second.to_le_bytes()).unwrap();
        for _ in 0..10 {
            clock.advance_millis(100);
            let bytes = reader.read(f.fid, 0, 8).unwrap();
            let seen = u64::from_le_bytes(bytes.try_into().unwrap());
            reads += 1;
            if seen != second {
                stale += 1;
            }
        }
        writer.close(f.fid).unwrap();
    }
    let d = net.stats().since(&before);
    let before_idle = net.stats();
    for _ in 0..600 {
        clock.advance_millis(100);
        reader.read(f.fid, 0, 8).unwrap();
    }
    let idle = net.stats().since(&before_idle);
    Outcome { rpcs: d.calls, bytes: d.bytes, stale_reads: stale, reads, idle_rpcs: idle.calls }
}

fn run_dfs() -> Outcome {
    let cell = dfs_core::Cell::builder().servers(1).build().unwrap();
    cell.create_volume(0, VolumeId(1), "v").unwrap();
    let writer = cell.new_client();
    let reader = cell.new_client();
    let root = writer.root(VolumeId(1)).unwrap();
    let f = writer.create(root, "shared", 0o666).unwrap();
    writer.write(f.fid, 0, &0u64.to_le_bytes()).unwrap();
    let before = cell.net().stats();
    let (mut stale, mut reads) = (0u64, 0u64);
    for second in 1..=ROUNDS {
        writer.write(f.fid, 0, &second.to_le_bytes()).unwrap();
        for _ in 0..10 {
            cell.clock().advance_millis(100);
            let bytes = reader.read(f.fid, 0, 8).unwrap();
            let seen = u64::from_le_bytes(bytes.try_into().unwrap());
            reads += 1;
            if seen != second {
                stale += 1;
            }
        }
    }
    let d = cell.net().stats().since(&before);
    let before_idle = cell.net().stats();
    for _ in 0..600 {
        cell.clock().advance_millis(100);
        reader.read(f.fid, 0, 8).unwrap();
    }
    let idle = cell.net().stats().since(&before_idle);
    Outcome { rpcs: d.calls, bytes: d.bytes, stale_reads: stale, reads, idle_rpcs: idle.calls }
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let systems: Vec<(&str, Outcome)> = vec![
        ("nfs (3s ttl)", run_nfs()),
        ("afs (callbacks)", run_afs()),
        ("dfs (tokens)", run_dfs()),
    ];

    if json {
        let rows = arr(systems.iter().map(|(name, o)| {
            Obj::new()
                .field("system", *name)
                .field("rpcs", o.rpcs)
                .field("bytes", o.bytes)
                .field("stale_reads", o.stale_reads)
                .field("reads", o.reads)
                .field("idle_rpcs", o.idle_rpcs)
        }));
        let out = Obj::new()
            .field("bench", "t3_consistency_spectrum")
            .field("rounds_s", ROUNDS)
            .field_raw("systems", &rows)
            .render();
        println!("{out}");
        return;
    }

    println!("T3: consistency vs network load (1 writer @1/s, 1 reader @10/s, 60 s)");
    println!("    stale read = reader saw a value older than the writer's last write\n");
    header(&["system", "RPCs", "bytes", "stale reads", "of reads", "idle RPCs/60s"]);
    for (name, o) in &systems {
        row(&[name, &o.rpcs, &o.bytes, &o.stale_reads, &o.reads, &o.idle_rpcs]);
    }
    println!("\nExpected shape (paper): NFS has stale reads AND steady polling traffic;");
    println!("AFS has stale reads between write and close; DFS has zero stale reads");
    println!("with traffic proportional to actual sharing.");
}
