//! T7 — §6: the locking hierarchy (high-level lock → server vnode →
//! low-level lock) plus per-file serialization stamps is deadlock-free
//! under contention, and single-system semantics hold throughout.
//!
//! A fleet of clients hammers a small set of shared files with mixed
//! reads, writes, lookups, locks, and opens. A wall-clock watchdog
//! detects stalls; the final cross-client view must agree byte-for-byte.

use dfs_bench::emit::{arr, Obj};
use dfs_bench::{f2, header, row};
use dfs_types::{ByteRange, VolumeId};
use decorum_dfs::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn storm(clients: usize, files: usize, ops_per_client: u64) -> (u64, f64, bool) {
    let cell = Cell::builder().servers(1).pools(12, 6).build().unwrap();
    cell.create_volume(0, VolumeId(1), "v").unwrap();
    let cms: Vec<_> = (0..clients).map(|_| cell.new_client()).collect();
    let root = cms[0].root(VolumeId(1)).unwrap();
    let fids: Vec<_> = (0..files)
        .map(|i| {
            let f = cms[0].create(root, &format!("shared{i}"), 0o666).unwrap();
            cms[0].write(f.fid, 0, &vec![0u8; 4096]).unwrap();
            f.fid
        })
        .collect();
    cms[0].fsync(fids[0]).unwrap();

    let completed = Arc::new(AtomicU64::new(0));
    let t0 = std::time::Instant::now();
    let threads: Vec<_> = cms
        .iter()
        .enumerate()
        .map(|(ci, cm)| {
            let cm = cm.clone();
            let fids = fids.clone();
            let completed = completed.clone();
            std::thread::spawn(move || {
                for op in 0..ops_per_client {
                    let fid = fids[(ci as u64 + op) as usize % fids.len()];
                    match op % 5 {
                        0 => {
                            cm.write(fid, (op % 8) * 128, &[ci as u8; 64]).unwrap();
                        }
                        1 | 2 => {
                            cm.read(fid, (op % 8) * 128, 64).unwrap();
                        }
                        3 => {
                            cm.getattr(fid).unwrap();
                        }
                        _ => {
                            let r = ByteRange::new((op % 4) * 32, (op % 4) * 32 + 16);
                            if cm.lock(fid, r, true).is_ok() {
                                cm.unlock(fid, r).unwrap();
                            }
                        }
                    }
                    completed.fetch_add(1, Ordering::Relaxed);
                }
            })
        })
        .collect();

    // Watchdog: if total progress stalls for 10 s of wall time, flag it.
    let mut stalled = false;
    let total_ops = (clients as u64) * ops_per_client;
    let mut last = 0u64;
    let mut last_change = std::time::Instant::now();
    loop {
        let now = completed.load(Ordering::Relaxed);
        if now >= total_ops {
            break;
        }
        if now != last {
            last = now;
            last_change = std::time::Instant::now();
        } else if last_change.elapsed().as_secs() > 10 {
            stalled = true;
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    for t in threads {
        t.join().unwrap();
    }
    let wall = t0.elapsed().as_secs_f64();

    // Cross-client agreement: everyone converges on the same bytes.
    let mut agree = true;
    for fid in &fids {
        let reference = cms[0].read(*fid, 0, 1024).unwrap();
        for cm in &cms[1..] {
            if cm.read(*fid, 0, 1024).unwrap() != reference {
                agree = false;
            }
        }
    }
    (total_ops, wall, !stalled && agree)
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let sweep: Vec<(usize, usize, (u64, f64, bool))> =
        [(2usize, 1usize), (4, 2), (8, 4), (8, 1)]
            .iter()
            .map(|&(clients, files)| (clients, files, storm(clients, files, 150)))
            .collect();

    if json {
        let rows = arr(sweep.iter().map(|&(clients, files, (ops, wall, ok))| {
            Obj::new()
                .field("clients", clients)
                .field("files", files)
                .field("total_ops", ops)
                .field("wall_s", wall)
                .field("no_deadlock_and_agree", ok)
        }));
        let out = Obj::new()
            .field("bench", "t7_deadlock_storm")
            .field("ops_per_client", 150u64)
            .field_raw("sweep", &rows)
            .render();
        println!("{out}");
        return;
    }

    println!("T7: deadlock-avoidance storm (mixed read/write/getattr/lock ops)\n");
    header(&["clients", "files", "total ops", "wall s", "ops/s", "no-deadlock+agree"]);
    for &(clients, files, (ops, wall, ok)) in &sweep {
        row(&[&clients, &files, &ops, &f2(wall), &f2(ops as f64 / wall), &ok]);
    }
    println!("\nExpected shape (paper §6): every configuration completes — no");
    println!("dependency cycles between client vnode locks, server vnodes, and");
    println!("revocations — and all clients agree on the final contents.");
}
