//! F1 — Figure 1: server-side structure, rendered from a live cell.
//!
//! `--json` emits the live component counters machine-readably (the
//! ASCII rendering is inherently human output).

use dfs_bench::emit::Obj;
use decorum_dfs::types::VolumeId;
use decorum_dfs::Cell;

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let cell = Cell::builder().servers(1).build().expect("cell");
    cell.create_volume(0, VolumeId(1), "root.cell").expect("volume");
    // Touch the server from both sides so every component has state.
    let c = cell.new_client();
    let root = c.root(VolumeId(1)).unwrap();
    let f = c.create(root, "x", 0o644).unwrap();
    c.write(f.fid, 0, b"hi").unwrap();
    let local = cell.server(0).local_volume(VolumeId(1)).unwrap();
    use decorum_dfs::vfs::{Credentials, Vfs};
    local.read(&Credentials::system(), f.fid, 0, 2).unwrap();

    let tm = cell.server(0).token_manager().stats();
    let hm = cell.server(0).host_model().clone();
    let ops = cell.server(0).stats().ops;

    if json {
        let out = Obj::new()
            .field("bench", "fig1_server_structure")
            .field("token_grants", tm.grants)
            .field("token_revocations", tm.revocations)
            .field("token_releases", tm.releases)
            .field_arr("host_model_clients", hm.clients().iter().map(|c| c.0))
            .field("server_ops", ops)
            .render();
        println!("{out}");
        return;
    }

    println!("{}", cell.render_server_structure());
    println!("live token manager: {} grants, {} revocations, {} releases",
        tm.grants, tm.revocations, tm.releases);
    println!("host model knows clients: {:?}", hm.clients());
    println!("server ops served: {ops}");
}
