//! T10 — §6.4: "the cache manager must ensure that some dedicated server
//! threads are available to handle these requests. If only one pool of
//! threads were available for all incoming requests, then it would be
//! possible for all of the server threads to be busy when a token
//! revocation procedure has to call back to the server, resulting in a
//! deadlock."
//!
//! Ablation: run a revocation-heavy workload with and without dedicated
//! revocation threads, with a deliberately tiny normal pool.

use dfs_bench::emit::{arr, Obj};
use dfs_bench::{header, row};
use dfs_types::VolumeId;
use decorum_dfs::Cell;

fn run(revocation_workers: usize) -> (u64, u64, bool) {
    // One normal worker: any grant that blocks on a revocation occupies
    // the whole pool, so the revocation-triggered store-back MUST have
    // somewhere else to run.
    let cell = Cell::builder().servers(1).pools(1, revocation_workers).build().unwrap();
    cell.create_volume(0, VolumeId(1), "v").unwrap();
    let a = cell.new_client();
    let b = cell.new_client();
    let root = a.root(VolumeId(1)).unwrap();
    let f = a.create(root, "contended", 0o666).unwrap();
    a.write(f.fid, 0, &vec![0u8; 4096]).unwrap();

    let mut completed = 0u64;
    let mut failures = 0u64;
    for i in 0..10u64 {
        // A dirties the file; B's read forces revocation + store-back.
        let ok1 = a.write(f.fid, 0, &[i as u8; 512]).is_ok();
        let ok2 = b.read(f.fid, 0, 512).is_ok();
        if ok1 && ok2 {
            completed += 1;
        } else {
            failures += 1;
        }
    }
    let timeouts = cell.net().stats().timeouts;
    (completed, failures, timeouts == 0)
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let sweep: Vec<(usize, (u64, u64, bool))> =
        [2usize, 1, 0].iter().map(|&rw| (rw, run(rw))).collect();

    if json {
        let rows = arr(sweep.iter().map(|&(rw, (ok, failed, clean))| {
            Obj::new()
                .field("revocation_workers", rw)
                .field("handoffs_ok", ok)
                .field("failed", failed)
                .field("no_timeouts", clean)
        }));
        let out = Obj::new()
            .field("bench", "t10_thread_pool_ablation")
            .field_raw("sweep", &rows)
            .render();
        println!("{out}");
        return;
    }

    println!("T10: dedicated revocation threads (§6.4 ablation; 1 normal worker)\n");
    header(&["rev workers", "handoffs ok", "failed", "no timeouts"]);
    for &(rw, (ok, failed, clean)) in &sweep {
        row(&[&rw, &ok, &failed, &clean]);
    }
    println!("\nExpected shape (paper §6.4): with dedicated workers every handoff");
    println!("completes; with 0 dedicated workers the store-back queues behind the");
    println!("busy pool and the workload stalls into timeouts — the deadlock the");
    println!("paper designs around.");
}
