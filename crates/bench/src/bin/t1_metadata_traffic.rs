//! T1 — §2.2 claim: a log-based file system issues *fewer* disk writes
//! than the FFS for metadata-heavy operations (create/delete/truncate),
//! despite writing data twice (log + home location), because log appends
//! are sequential and batched while FFS metadata writes are synchronous
//! and scattered.

use dfs_bench::{header, ratio, row};
use dfs_disk::{DiskConfig, DiskStats, SimDisk};
use dfs_episode::{Episode, FormatParams};
use dfs_ffs::Ffs;
use dfs_types::{SimClock, VolumeId};
use dfs_vfs::{Credentials, PhysicalFs, SetAttrs, Vfs};

const DISK_BLOCKS: u32 = 128 * 1024;

fn episode_run(files: u32) -> DiskStats {
    let disk = SimDisk::new(DiskConfig::with_blocks(DISK_BLOCKS));
    let ep = Episode::format(disk.clone(), SimClock::new(), FormatParams::default()).unwrap();
    ep.create_volume(VolumeId(1), "v").unwrap();
    let v = PhysicalFs::mount(&*ep, VolumeId(1)).unwrap();
    let cred = Credentials::system();
    let root = v.root().unwrap();
    disk.reset_stats();
    // Create, grow, truncate, delete — pure metadata churn.
    for i in 0..files {
        let f = v.create(&cred, root, &format!("f{i}"), 0o644).unwrap();
        v.write(&cred, f.fid, 0, &[1u8; 2048]).unwrap();
        v.setattr(&cred, f.fid, &SetAttrs::truncate(0)).unwrap();
        v.remove(&cred, root, &format!("f{i}")).unwrap();
        if i % 64 == 63 {
            // The periodic 30-second batch commit of §2.2.
            ep.sync_log().unwrap();
        }
    }
    ep.sync_log().unwrap();
    disk.stats()
}

fn ffs_run(files: u32) -> DiskStats {
    let disk = SimDisk::new(DiskConfig::with_blocks(DISK_BLOCKS));
    let fs = Ffs::format(disk.clone(), SimClock::new(), VolumeId(1)).unwrap();
    let cred = Credentials::system();
    let root = fs.root().unwrap();
    disk.reset_stats();
    for i in 0..files {
        let f = fs.create(&cred, root, &format!("f{i}"), 0o644).unwrap();
        fs.write(&cred, f.fid, 0, &[1u8; 2048]).unwrap();
        fs.setattr(&cred, f.fid, &SetAttrs::truncate(0)).unwrap();
        fs.remove(&cred, root, &format!("f{i}")).unwrap();
    }
    disk.stats()
}

fn parse_args() -> (bool, Vec<u32>) {
    let mut json = false;
    let mut sweep = vec![100u32, 1000, 4000];
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json = true,
            "--files" => {
                sweep = vec![args.next().and_then(|v| v.parse().ok()).expect("--files N")]
            }
            other => panic!("unknown flag {other:?} (supported: --json --files N)"),
        }
    }
    (json, sweep)
}

fn main() {
    let (json, sweep) = parse_args();
    if json {
        let rows: Vec<String> = sweep
            .iter()
            .map(|&files| {
                let e = episode_run(files);
                let f = ffs_run(files);
                format!(
                    "{{\"files\": {files}, \
                     \"episode\": {{\"durable_writes\": {}, \"syncs\": {}, \"disk_ms\": {:.2}}}, \
                     \"ffs\": {{\"durable_writes\": {}, \"syncs\": {}, \"disk_ms\": {:.2}}}}}",
                    e.stable_writes,
                    e.syncs,
                    e.busy_ms(),
                    f.stable_writes,
                    f.syncs,
                    f.busy_ms()
                )
            })
            .collect();
        println!("{{\"bench\": \"t1_metadata_traffic\", \"runs\": [{}]}}", rows.join(", "));
        return;
    }
    println!("T1: disk traffic for metadata-heavy operations (create+write+truncate+delete)");
    println!("    Episode batches metadata into sequential log appends; FFS writes");
    println!("    metadata synchronously in place (N = files cycled).\n");
    header(&["N", "fs", "durable writes", "sync ops", "seq ops", "random ops", "disk ms"]);
    for &files in &sweep {
        let e = episode_run(files);
        let f = ffs_run(files);
        row(&[&files, &"episode", &e.stable_writes, &e.syncs, &e.sequential_ops, &e.random_ops, &dfs_bench::f2(e.busy_ms())]);
        row(&[&files, &"ffs", &f.stable_writes, &f.syncs, &f.sequential_ops, &f.random_ops, &dfs_bench::f2(f.busy_ms())]);
        println!(
            "{:>16} advantage: {} fewer durable writes, {} less disk time\n",
            "",
            ratio(f.stable_writes as f64, e.stable_writes as f64),
            ratio(f.busy_us as f64, e.busy_us as f64),
        );
    }
    println!("Expected shape (paper): Episode < FFS on writes and time, and the gap");
    println!("is dominated by FFS's synchronous random metadata writes.");
}
