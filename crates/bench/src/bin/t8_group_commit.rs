//! T8 — §2.2: "fidelity to the spirit of the UNIX file system only
//! requires batching commits every 30 seconds"; batch commits append
//! sequentially and are cheap. Sweeping the sync interval shows the
//! latency/traffic trade.
//!
//! The second section measures the client write-behind pipeline: a
//! sequential-write workload stored back under the pre-pipeline shape
//! (one `StoreData` per dirty page, one journal transaction each) versus
//! the coalescing pipeline (extent-sized runs batched into one
//! `StoreDataVec`, applied in a single transaction ending in one group
//! commit).
//!
//! Flags: `--json` emits machine-readable results (validated by
//! `jsoncheck` in the verify.sh smoke stage); `--ops N` and `--pages N`
//! shrink the workloads for smoke runs.

use dfs_bench::{f2, header, ratio, row};
use dfs_client::{CacheManager, MemCache, WritebackConfig, PAGE_SIZE};
use dfs_disk::{DiskConfig, SimDisk};
use dfs_episode::{Episode, FormatParams};
use dfs_rpc::{Addr, Network, PoolConfig};
use dfs_server::{FileServer, VldbReplica};
use dfs_types::{ClientId, ServerId, SimClock, VolumeId};
use dfs_vfs::{Credentials, PhysicalFs};
use std::sync::Arc;

/// Runs `ops` file creations with a group commit every `batch`
/// operations (batch == 1 models sync-on-every-op; large batches model
/// the 30 s timer).
fn run(ops: u32, batch: u32) -> (u64, u64, f64) {
    let disk = SimDisk::new(DiskConfig::with_blocks(128 * 1024));
    let ep = Episode::format(disk.clone(), SimClock::new(), FormatParams::default()).unwrap();
    ep.create_volume(VolumeId(1), "v").unwrap();
    let v = PhysicalFs::mount(&*ep, VolumeId(1)).unwrap();
    let cred = Credentials::system();
    let root = v.root().unwrap();
    disk.reset_stats();
    for i in 0..ops {
        v.create(&cred, root, &format!("f{i}"), 0o644).unwrap();
        if i % batch == batch - 1 {
            ep.sync_log().unwrap();
        }
    }
    ep.sync_log().unwrap();
    let s = disk.stats();
    (s.stable_writes, s.syncs, s.busy_ms())
}

/// One store-back measurement: RPC and journal costs of pushing a
/// `pages`-page sequential write from client to server.
struct WbRun {
    store_rpcs: u64,
    store_vec_rpcs: u64,
    store_bytes: u64,
    jn_syncs: u64,
    jn_txns: u64,
}

impl WbRun {
    fn rpcs(&self) -> u64 {
        self.store_rpcs + self.store_vec_rpcs
    }
}

/// Builds a one-server cell by hand (keeping the Episode handle so the
/// server's journal counters stay reachable), writes `pages` sequential
/// pages, and measures the fsync-driven store-back.
fn writeback_run(wb: WritebackConfig, pages: u64) -> WbRun {
    let clock = SimClock::new();
    let net = Network::new(clock.clone(), 10);
    let vldb = Addr::Vldb(0);
    net.register(vldb, VldbReplica::new(), PoolConfig::default());
    let ep = Episode::format(
        SimDisk::new(DiskConfig::with_blocks(32 * 1024)),
        clock,
        FormatParams::default(),
    )
    .unwrap();
    ep.create_volume(VolumeId(1), "wb").unwrap();
    let _srv =
        FileServer::start(net.clone(), ServerId(1), ep.clone(), vec![vldb], PoolConfig::default())
            .unwrap();
    // Flusher off so all store-back traffic is driven by the fsync and
    // the RPC counts are deterministic.
    let c = CacheManager::start_with_config(
        net.clone(),
        ClientId(1),
        vec![vldb],
        Arc::new(MemCache::new()),
        wb,
    );
    let root = c.root(VolumeId(1)).unwrap();
    let f = c.create(root, "seq", 0o644).unwrap();
    for p in 0..pages {
        c.write(f.fid, p * PAGE_SIZE as u64, &[p as u8; PAGE_SIZE]).unwrap();
    }
    let net_before = net.stats();
    let jn_before = ep.journal().stats();
    c.fsync(f.fid).unwrap();
    let nd = net.stats().since(&net_before);
    let jd = ep.journal().stats().since(&jn_before);
    let label_bytes = |l: &str| nd.bytes_by_label.get(l).copied().unwrap_or(0);
    WbRun {
        store_rpcs: nd.by_label.get("StoreData").copied().unwrap_or(0),
        store_vec_rpcs: nd.by_label.get("StoreDataVec").copied().unwrap_or(0),
        store_bytes: label_bytes("StoreData") + label_bytes("StoreDataVec"),
        jn_syncs: jd.syncs,
        jn_txns: jd.txns_begun,
    }
}

fn parse_args() -> (bool, u32, u64) {
    let mut json = false;
    let mut ops = 2000u32;
    let mut pages = 64u64;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json = true,
            "--ops" => ops = args.next().and_then(|v| v.parse().ok()).expect("--ops N"),
            "--pages" => pages = args.next().and_then(|v| v.parse().ok()).expect("--pages N"),
            other => panic!("unknown flag {other:?} (supported: --json --ops N --pages N)"),
        }
    }
    (json, ops, pages)
}

fn main() {
    let (json, ops, pages) = parse_args();
    let batches = [1u32, 4, 16, 64, 256, 1024];
    let sweep: Vec<(u32, u64, u64, f64)> = batches
        .iter()
        .filter(|&&b| b <= ops)
        .map(|&b| {
            let (writes, syncs, ms) = run(ops, b);
            (b, writes, syncs, ms)
        })
        .collect();
    let legacy = writeback_run(WritebackConfig::legacy(), pages);
    let pipeline = writeback_run(
        WritebackConfig { flusher: false, ..WritebackConfig::default() },
        pages,
    );

    if json {
        let rows: Vec<String> = sweep
            .iter()
            .map(|(b, w, s, ms)| {
                format!(
                    "{{\"batch\": {b}, \"durable_writes\": {w}, \"syncs\": {s}, \
                     \"disk_ms\": {ms:.2}}}"
                )
            })
            .collect();
        let wb = |r: &WbRun| {
            format!(
                "{{\"store_data_rpcs\": {}, \"store_data_vec_rpcs\": {}, \
                 \"store_bytes\": {}, \"journal_syncs\": {}, \"journal_txns\": {}}}",
                r.store_rpcs, r.store_vec_rpcs, r.store_bytes, r.jn_syncs, r.jn_txns
            )
        };
        println!(
            "{{\"bench\": \"t8_group_commit\", \"ops\": {ops}, \
             \"group_commit\": [{}], \
             \"writeback\": {{\"pages\": {pages}, \"legacy\": {}, \"pipeline\": {}, \
             \"rpc_reduction\": {:.2}, \"sync_reduction\": {:.2}}}}}",
            rows.join(", "),
            wb(&legacy),
            wb(&pipeline),
            legacy.rpcs() as f64 / pipeline.rpcs().max(1) as f64,
            legacy.jn_syncs as f64 / pipeline.jn_syncs.max(1) as f64,
        );
        return;
    }

    println!("T8: group-commit batching — {ops} creates, sync every N ops\n");
    header(&["batch", "durable writes", "sync ops", "disk ms", "writes/op"]);
    for (b, writes, syncs, ms) in &sweep {
        row(&[b, writes, syncs, &f2(*ms), &f2(*writes as f64 / ops as f64)]);
    }
    println!("\nExpected shape (paper): larger batches amortize log writes toward a");
    println!("fraction of a durable write per operation; even batch=1 beats FFS's");
    println!("several synchronous writes per create (see T1).\n");

    println!("Write-behind pipeline: {pages}-page sequential write, then fsync\n");
    header(&["path", "StoreData", "StoreDataVec", "store bytes", "jn syncs", "jn txns"]);
    row(&[
        &"legacy",
        &legacy.store_rpcs,
        &legacy.store_vec_rpcs,
        &legacy.store_bytes,
        &legacy.jn_syncs,
        &legacy.jn_txns,
    ]);
    row(&[
        &"pipeline",
        &pipeline.store_rpcs,
        &pipeline.store_vec_rpcs,
        &pipeline.store_bytes,
        &pipeline.jn_syncs,
        &pipeline.jn_txns,
    ]);
    println!(
        "\n{:>16} advantage: {} fewer store RPCs, {} fewer journal syncs",
        "",
        ratio(legacy.rpcs() as f64, pipeline.rpcs() as f64),
        ratio(legacy.jn_syncs as f64, pipeline.jn_syncs as f64),
    );
    println!("\nExpected shape: the pipeline coalesces extent-sized runs into one");
    println!("StoreDataVec applied as a single server transaction — RPC count and");
    println!("group commits drop by the coalescing factor while bytes stay put.");
}
