//! T8 — §2.2: "fidelity to the spirit of the UNIX file system only
//! requires batching commits every 30 seconds"; batch commits append
//! sequentially and are cheap. Sweeping the sync interval shows the
//! latency/traffic trade.

use dfs_bench::{f2, header, row};
use dfs_disk::{DiskConfig, SimDisk};
use dfs_episode::{Episode, FormatParams};
use dfs_types::{SimClock, VolumeId};
use dfs_vfs::{Credentials, PhysicalFs};

const OPS: u32 = 2000;

/// Runs OPS file creations with a group commit every `batch` operations
/// (batch == 1 models sync-on-every-op; large batches model the 30 s
/// timer).
fn run(batch: u32) -> (u64, u64, f64) {
    let disk = SimDisk::new(DiskConfig::with_blocks(128 * 1024));
    let ep = Episode::format(disk.clone(), SimClock::new(), FormatParams::default()).unwrap();
    ep.create_volume(VolumeId(1), "v").unwrap();
    let v = PhysicalFs::mount(&*ep, VolumeId(1)).unwrap();
    let cred = Credentials::system();
    let root = v.root().unwrap();
    disk.reset_stats();
    for i in 0..OPS {
        v.create(&cred, root, &format!("f{i}"), 0o644).unwrap();
        if i % batch == batch - 1 {
            ep.sync_log().unwrap();
        }
    }
    ep.sync_log().unwrap();
    let s = disk.stats();
    (s.stable_writes, s.syncs, s.busy_ms())
}

fn main() {
    println!("T8: group-commit batching — {OPS} creates, sync every N ops\n");
    header(&["batch", "durable writes", "sync ops", "disk ms", "writes/op"]);
    for batch in [1u32, 4, 16, 64, 256, 1024] {
        let (writes, syncs, ms) = run(batch);
        row(&[&batch, &writes, &syncs, &f2(ms), &f2(writes as f64 / OPS as f64)]);
    }
    println!("\nExpected shape (paper): larger batches amortize log writes toward a");
    println!("fraction of a durable write per operation; even batch=1 beats FFS's");
    println!("several synchronous writes per create (see T1).");
}
