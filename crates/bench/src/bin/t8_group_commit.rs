//! T8 — §2.2: "fidelity to the spirit of the UNIX file system only
//! requires batching commits every 30 seconds"; batch commits append
//! sequentially and are cheap. Sweeping the sync interval shows the
//! latency/traffic trade.
//!
//! The second section measures the client write-behind pipeline: a
//! sequential-write workload stored back under the pre-pipeline shape
//! (one `StoreData` per dirty page, one journal transaction each) versus
//! the coalescing pipeline (extent-sized runs batched into one
//! `StoreDataVec`, applied in a single transaction ending in one group
//! commit).
//!
//! The third section (`--clients A,B,...`) is a concurrency sweep: N
//! clients each write their own file and fsync in parallel, so token
//! grants and store-backs for distinct fids land on different shards of
//! the server's token manager and host table. Aggregate throughput per
//! N is the metric.
//!
//! Flags: `--json` emits machine-readable results (validated by
//! `jsoncheck` in the verify.sh smoke stage); `--ops N` and `--pages N`
//! shrink the workloads for smoke runs.

use dfs_bench::{f2, header, ratio, row};
use dfs_client::{CacheManager, MemCache, WritebackConfig, PAGE_SIZE};
use dfs_disk::{DiskConfig, SimDisk};
use dfs_episode::{Episode, FormatParams};
use dfs_rpc::{Addr, Network, PoolConfig};
use dfs_server::{FileServer, VldbReplica};
use dfs_types::{ClientId, ServerId, SimClock, VolumeId};
use dfs_vfs::{Credentials, PhysicalFs};
use decorum_dfs::Cell;
use std::sync::Arc;

/// Runs `ops` file creations with a group commit every `batch`
/// operations (batch == 1 models sync-on-every-op; large batches model
/// the 30 s timer).
fn run(ops: u32, batch: u32) -> (u64, u64, f64) {
    let disk = SimDisk::new(DiskConfig::with_blocks(128 * 1024));
    let ep = Episode::format(disk.clone(), SimClock::new(), FormatParams::default()).unwrap();
    ep.create_volume(VolumeId(1), "v").unwrap();
    let v = PhysicalFs::mount(&*ep, VolumeId(1)).unwrap();
    let cred = Credentials::system();
    let root = v.root().unwrap();
    disk.reset_stats();
    for i in 0..ops {
        v.create(&cred, root, &format!("f{i}"), 0o644).unwrap();
        if i % batch == batch - 1 {
            ep.sync_log().unwrap();
        }
    }
    ep.sync_log().unwrap();
    let s = disk.stats();
    (s.stable_writes, s.syncs, s.busy_ms())
}

/// One store-back measurement: RPC and journal costs of pushing a
/// `pages`-page sequential write from client to server.
struct WbRun {
    store_rpcs: u64,
    store_vec_rpcs: u64,
    store_bytes: u64,
    jn_syncs: u64,
    jn_txns: u64,
}

impl WbRun {
    fn rpcs(&self) -> u64 {
        self.store_rpcs + self.store_vec_rpcs
    }
}

/// Builds a one-server cell by hand (keeping the Episode handle so the
/// server's journal counters stay reachable), writes `pages` sequential
/// pages, and measures the fsync-driven store-back.
fn writeback_run(wb: WritebackConfig, pages: u64) -> WbRun {
    let clock = SimClock::new();
    let net = Network::new(clock.clone(), 10);
    let vldb = Addr::Vldb(0);
    net.register(vldb, VldbReplica::new(), PoolConfig::default());
    let ep = Episode::format(
        SimDisk::new(DiskConfig::with_blocks(32 * 1024)),
        clock,
        FormatParams::default(),
    )
    .unwrap();
    ep.create_volume(VolumeId(1), "wb").unwrap();
    let _srv =
        FileServer::start(net.clone(), ServerId(1), ep.clone(), vec![vldb], PoolConfig::default())
            .unwrap();
    // Flusher off so all store-back traffic is driven by the fsync and
    // the RPC counts are deterministic.
    let c = CacheManager::start_with_config(
        net.clone(),
        ClientId(1),
        vec![vldb],
        Arc::new(MemCache::new()),
        wb,
    );
    let root = c.root(VolumeId(1)).unwrap();
    let f = c.create(root, "seq", 0o644).unwrap();
    for p in 0..pages {
        c.write(f.fid, p * PAGE_SIZE as u64, &[p as u8; PAGE_SIZE]).unwrap();
    }
    let net_before = net.stats();
    let jn_before = ep.journal().stats();
    c.fsync(f.fid).unwrap();
    let nd = net.stats().since(&net_before);
    let jd = ep.journal().stats().since(&jn_before);
    let label_bytes = |l: &str| nd.bytes_by_label.get(l).copied().unwrap_or(0);
    WbRun {
        store_rpcs: nd.by_label.get("StoreData").copied().unwrap_or(0),
        store_vec_rpcs: nd.by_label.get("StoreDataVec").copied().unwrap_or(0),
        store_bytes: label_bytes("StoreData") + label_bytes("StoreDataVec"),
        jn_syncs: jd.syncs,
        jn_txns: jd.txns_begun,
    }
}

/// One point of the concurrency sweep: N clients, each writing its own
/// `pages`-page file then fsyncing, all in parallel. Distinct fids mean
/// the grant/store-back path fans out across token and host shards.
struct ConcPoint {
    clients: usize,
    total_pages: u64,
    wall_s: f64,
    pages_per_s: f64,
    /// RPCs issued during the timed region and the simulated network
    /// time charged to them — deterministic, unlike wall clock on an
    /// oversubscribed host. Shared-root directory-token churn means
    /// revocation batching shows up directly in these.
    rpcs: u64,
    sim_net_ms: f64,
    pages_per_sim_net_s: f64,
    ok: bool,
}

fn concurrent_writers(clients: usize, pages: u64) -> ConcPoint {
    // A log sized for the fan-in: 64 writers' store-backs can land
    // between two group commits, so scale the fixed log with N.
    let log_blocks = (256 * clients.max(4) as u32).min(16 * 1024);
    let cell = Cell::builder().servers(1).pools(12, 6).log_blocks(log_blocks).build().unwrap();
    cell.create_volume(0, VolumeId(1), "v").unwrap();
    let cms: Vec<_> = (0..clients).map(|_| cell.new_client()).collect();
    let root = cms[0].root(VolumeId(1)).unwrap();
    let net_before = cell.net().stats();
    let t0 = std::time::Instant::now();
    let threads: Vec<_> = cms
        .iter()
        .enumerate()
        .map(|(ci, cm)| {
            let cm = cm.clone();
            std::thread::spawn(move || {
                let f = cm.create(root, &format!("w{ci}"), 0o644).unwrap();
                for p in 0..pages {
                    cm.write(f.fid, p * PAGE_SIZE as u64, &[ci as u8; PAGE_SIZE]).unwrap();
                }
                cm.fsync(f.fid).unwrap();
                f.fid
            })
        })
        .collect();
    let fids: Vec<_> = threads.into_iter().map(|t| t.join().unwrap()).collect();
    let wall = t0.elapsed().as_secs_f64();
    let nd = cell.net().stats().since(&net_before);

    // Durability + visibility: every file has its full length and its
    // first page is readable (with the right fill) from another client.
    let mut ok = true;
    for (ci, fid) in fids.iter().enumerate() {
        let peer = &cms[(ci + 1) % cms.len()];
        if peer.getattr(*fid).unwrap().length != pages * PAGE_SIZE as u64 {
            ok = false;
        }
        if peer.read(*fid, 0, 8).unwrap() != vec![ci as u8; 8] {
            ok = false;
        }
    }
    let total_pages = clients as u64 * pages;
    ConcPoint {
        clients,
        total_pages,
        wall_s: wall,
        pages_per_s: total_pages as f64 / wall,
        rpcs: nd.calls,
        sim_net_ms: nd.latency_us as f64 / 1000.0,
        pages_per_sim_net_s: total_pages as f64 * 1e6 / nd.latency_us.max(1) as f64,
        ok,
    }
}

struct Args {
    json: bool,
    ops: u32,
    pages: u64,
    clients: Vec<usize>,
}

fn parse_args() -> Args {
    let mut a = Args { json: false, ops: 2000, pages: 64, clients: Vec::new() };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => a.json = true,
            "--ops" => a.ops = args.next().and_then(|v| v.parse().ok()).expect("--ops N"),
            "--pages" => a.pages = args.next().and_then(|v| v.parse().ok()).expect("--pages N"),
            "--clients" => {
                let list = args.next().expect("--clients A,B,...");
                a.clients = list
                    .split(',')
                    .map(|s| s.trim().parse().expect("--clients takes integers"))
                    .collect();
            }
            other => panic!(
                "unknown flag {other:?} (supported: --json --ops N --pages N --clients A,B,...)"
            ),
        }
    }
    a
}

fn main() {
    let Args { json, ops, pages, clients } = parse_args();
    let batches = [1u32, 4, 16, 64, 256, 1024];
    let sweep: Vec<(u32, u64, u64, f64)> = batches
        .iter()
        .filter(|&&b| b <= ops)
        .map(|&b| {
            let (writes, syncs, ms) = run(ops, b);
            (b, writes, syncs, ms)
        })
        .collect();
    let legacy = writeback_run(WritebackConfig::legacy(), pages);
    let pipeline = writeback_run(
        WritebackConfig { flusher: false, ..WritebackConfig::default() },
        pages,
    );
    let conc: Vec<_> = clients.iter().map(|&n| concurrent_writers(n, pages)).collect();

    if json {
        let rows: Vec<String> = sweep
            .iter()
            .map(|(b, w, s, ms)| {
                format!(
                    "{{\"batch\": {b}, \"durable_writes\": {w}, \"syncs\": {s}, \
                     \"disk_ms\": {ms:.2}}}"
                )
            })
            .collect();
        let wb = |r: &WbRun| {
            format!(
                "{{\"store_data_rpcs\": {}, \"store_data_vec_rpcs\": {}, \
                 \"store_bytes\": {}, \"journal_syncs\": {}, \"journal_txns\": {}}}",
                r.store_rpcs, r.store_vec_rpcs, r.store_bytes, r.jn_syncs, r.jn_txns
            )
        };
        let conc_rows: Vec<String> = conc
            .iter()
            .map(|c| {
                format!(
                    "{{\"clients\": {}, \"pages_per_client\": {pages}, \
                     \"total_pages\": {}, \"wall_s\": {:.4}, \"pages_per_s\": {:.1}, \
                     \"rpcs\": {}, \"sim_net_ms\": {:.2}, \"pages_per_sim_net_s\": {:.1}, \
                     \"ok\": {}}}",
                    c.clients,
                    c.total_pages,
                    c.wall_s,
                    c.pages_per_s,
                    c.rpcs,
                    c.sim_net_ms,
                    c.pages_per_sim_net_s,
                    c.ok
                )
            })
            .collect();
        println!(
            "{{\"bench\": \"t8_group_commit\", \"ops\": {ops}, \
             \"group_commit\": [{}], \
             \"writeback\": {{\"pages\": {pages}, \"legacy\": {}, \"pipeline\": {}, \
             \"rpc_reduction\": {:.2}, \"sync_reduction\": {:.2}}}, \
             \"concurrency\": [{}]}}",
            rows.join(", "),
            wb(&legacy),
            wb(&pipeline),
            legacy.rpcs() as f64 / pipeline.rpcs().max(1) as f64,
            legacy.jn_syncs as f64 / pipeline.jn_syncs.max(1) as f64,
            conc_rows.join(", "),
        );
        return;
    }

    println!("T8: group-commit batching — {ops} creates, sync every N ops\n");
    header(&["batch", "durable writes", "sync ops", "disk ms", "writes/op"]);
    for (b, writes, syncs, ms) in &sweep {
        row(&[b, writes, syncs, &f2(*ms), &f2(*writes as f64 / ops as f64)]);
    }
    println!("\nExpected shape (paper): larger batches amortize log writes toward a");
    println!("fraction of a durable write per operation; even batch=1 beats FFS's");
    println!("several synchronous writes per create (see T1).\n");

    println!("Write-behind pipeline: {pages}-page sequential write, then fsync\n");
    header(&["path", "StoreData", "StoreDataVec", "store bytes", "jn syncs", "jn txns"]);
    row(&[
        &"legacy",
        &legacy.store_rpcs,
        &legacy.store_vec_rpcs,
        &legacy.store_bytes,
        &legacy.jn_syncs,
        &legacy.jn_txns,
    ]);
    row(&[
        &"pipeline",
        &pipeline.store_rpcs,
        &pipeline.store_vec_rpcs,
        &pipeline.store_bytes,
        &pipeline.jn_syncs,
        &pipeline.jn_txns,
    ]);
    println!(
        "\n{:>16} advantage: {} fewer store RPCs, {} fewer journal syncs",
        "",
        ratio(legacy.rpcs() as f64, pipeline.rpcs() as f64),
        ratio(legacy.jn_syncs as f64, pipeline.jn_syncs as f64),
    );
    println!("\nExpected shape: the pipeline coalesces extent-sized runs into one");
    println!("StoreDataVec applied as a single server transaction — RPC count and");
    println!("group commits drop by the coalescing factor while bytes stay put.");

    if !conc.is_empty() {
        println!("\nConcurrent writers: N clients, one private file each, write+fsync\n");
        header(&["clients", "total pages", "RPCs", "net ms", "pages/net-s", "pages/s", "ok"]);
        for c in &conc {
            row(&[
                &c.clients,
                &c.total_pages,
                &c.rpcs,
                &f2(c.sim_net_ms),
                &f2(c.pages_per_sim_net_s),
                &f2(c.pages_per_s),
                &c.ok,
            ]);
        }
        println!("\nExpected shape (§5): distinct fids hash to different token/host");
        println!("shards, so aggregate store-back throughput scales with clients");
        println!("instead of serializing on one manager-wide mutex.");
    }
}
