//! T12 (extension) — §4.2: the diskless-client option.
//!
//! "An in-memory version of the data cache is provided as an option,
//! enabling diskless clients to be used." Both cache variants must show
//! identical network behaviour (tokens do the consistency work either
//! way); the disk-backed client additionally pays local disk traffic,
//! which this harness surfaces.

use dfs_bench::emit::{arr, Obj};
use dfs_bench::{header, row};
use dfs_client::DiskCache;
use dfs_disk::{DiskConfig, SimDisk};
use dfs_types::VolumeId;
use decorum_dfs::Cell;
use std::sync::Arc;

const FILES: u32 = 20;
const FILE_BYTES: usize = 32 * 1024;
const READ_PASSES: u32 = 3;

fn workload(cell: &Cell, cm: &Arc<dfs_client::CacheManager>) -> (u64, u64) {
    let root = cm.root(VolumeId(1)).unwrap();
    let before = cell.net().stats();
    let mut fids = Vec::new();
    for i in 0..FILES {
        let f = cm.create(root, &format!("f{i}"), 0o644).unwrap();
        cm.write(f.fid, 0, &vec![i as u8; FILE_BYTES]).unwrap();
        cm.fsync(f.fid).unwrap();
        fids.push(f.fid);
    }
    for _ in 0..READ_PASSES {
        for &f in &fids {
            let mut off = 0u64;
            while off < FILE_BYTES as u64 {
                cm.read(f, off, 4096).unwrap();
                off += 4096;
            }
        }
    }
    let d = cell.net().stats().since(&before);
    (d.calls, d.bytes)
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");

    // Diskless (in-memory cache).
    let diskless = {
        let cell = Cell::builder().servers(1).disk_blocks(64 * 1024).build().unwrap();
        cell.create_volume(0, VolumeId(1), "v").unwrap();
        let cm = cell.new_client();
        let (rpcs, bytes) = workload(&cell, &cm);
        ("diskless (mem)", rpcs, bytes, 0u64)
    };

    // Disk-backed cache.
    let disk_cached = {
        let cell = Cell::builder().servers(1).disk_blocks(64 * 1024).build().unwrap();
        cell.create_volume(0, VolumeId(1), "v").unwrap();
        let local_disk = SimDisk::new(DiskConfig::with_blocks(8 * 1024));
        let cm = cell.new_client_with(Arc::new(DiskCache::new(local_disk.clone())));
        let (rpcs, bytes) = workload(&cell, &cm);
        let s = local_disk.stats();
        ("disk-cached", rpcs, bytes, s.reads + s.writes)
    };
    let variants = [diskless, disk_cached];

    if json {
        let rows = arr(variants.iter().map(|&(name, rpcs, bytes, ios)| {
            Obj::new()
                .field("client", name)
                .field("rpcs", rpcs)
                .field("net_bytes", bytes)
                .field("local_disk_ios", ios)
        }));
        let out = Obj::new()
            .field("bench", "t12_diskless_clients")
            .field("files", FILES)
            .field("file_bytes", FILE_BYTES)
            .field("read_passes", READ_PASSES)
            .field("identical_network", diskless.1 == disk_cached.1)
            .field_raw("variants", &rows)
            .render();
        println!("{out}");
        return;
    }

    println!("T12 (extension): diskless vs disk-cached clients (§4.2)");
    println!(
        "    {FILES} files x {} KiB written + fsynced, then read x{READ_PASSES}\n",
        FILE_BYTES / 1024
    );
    header(&["client", "RPCs", "net bytes", "local disk IOs"]);
    for &(name, rpcs, bytes, ios) in &variants {
        row(&[&name, &rpcs, &bytes, &ios]);
    }

    println!("\nExpected shape: identical network behaviour for both variants");
    println!("(tokens, not the cache medium, carry the consistency); the disk");
    println!("client trades local disk traffic for surviving reboots with a");
    println!("warm cache — the §4.2 design point.");
}
