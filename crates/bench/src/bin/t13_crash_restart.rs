//! T13 — the crash-restart pipeline end to end (§2.2 + the recovery
//! protocol): a whole cell is crashed and restarted while a write-behind
//! client holds dirty pages, sweeping the file-system size with the
//! in-flight burst held constant.
//!
//! Two claims are measured at once:
//!
//! 1. **Server**: journal replay cost (blocks scanned, simulated disk
//!    time) stays flat as the file system grows — recovery tracks the
//!    active log, not the aggregate (§2.2).
//! 2. **Client**: the reconnection pipeline reestablishes the token set
//!    inside the grace window and replays the dirty burst with zero
//!    lost updates, at a cost proportional to the burst.
//!
//! Flags: `--json` emits machine-readable results (validated by
//! `jsoncheck` in the verify.sh smoke stage); `--files N` sets the base
//! file count of the sweep; `--burst N` the dirty pages at crash time.

use dfs_bench::{f2, header, row};
use decorum_dfs::client::WritebackConfig;
use decorum_dfs::types::VolumeId;
use decorum_dfs::Cell;

struct Point {
    files: u32,
    fs_kib: u64,
    scanned_blocks: u64,
    records: u64,
    replay_ms: f64,
    tokens_reestablished: u64,
    replayed_pages: u64,
    grace_waits: u64,
    verified: bool,
}

/// Grows a fresh cell to `files` × 16 KiB of fsync'd data, leaves a
/// `burst`-page dirty write in the client cache, crashes and restarts
/// the server, and drives the client back through recovery.
fn run(files: u32, burst: u64) -> Point {
    let cell = Cell::builder()
        .servers(1)
        .disk_blocks(256 * 1024)
        .log_blocks(256)
        .build()
        .expect("cell");
    cell.create_volume(0, VolumeId(1), "v").expect("volume");
    // Flusher off: the burst must still be dirty at crash time, so the
    // replay cost measured below is exactly the client's.
    let c = cell.new_client_writeback(WritebackConfig { flusher: false, ..Default::default() });
    let root = c.root(VolumeId(1)).unwrap();
    for i in 0..files {
        let f = c.create(root, &format!("f{i}"), 0o644).unwrap();
        c.write(f.fid, 0, &vec![i as u8; 16 * 1024]).unwrap();
        c.fsync(f.fid).unwrap();
    }
    // Checkpoint: an empty-handed fsync forces the log and flushes the
    // episode home, so the *active* log at crash time is exactly the
    // fixed-size tail below — independent of how much data came before.
    let hot = c.create(root, "hot", 0o644).unwrap();
    c.fsync(hot.fid).unwrap();
    // A fixed tail of acked-but-uncheckpointed transactions: this is
    // what journal replay will actually scan.
    for i in 0..8 {
        let t = c.create(root, &format!("tail{i}"), 0o644).unwrap();
        c.write(t.fid, 0, &[i as u8; 4096]).unwrap();
        c.fsync(t.fid).unwrap();
    }
    // The fixed in-flight burst: dirty in the client cache only.
    for p in 0..burst {
        c.write(hot.fid, p * 4096, &[0xA5u8; 4096]).unwrap();
    }
    let before = c.stats();

    cell.crash_server(0);
    let report = cell.restart_server(0, 5_000_000).expect("restart");

    // One poke runs the whole client pipeline: GraceWait, epoch probe,
    // reestablishment, burst replay.
    c.create(root, "poke", 0o644).unwrap();
    let after = c.stats();

    // Zero-lost-update check through a fresh client (grace closed when
    // the survivor checked in, so this is admitted immediately).
    let b = cell.new_client();
    let verified = (0..burst)
        .all(|p| b.read(hot.fid, p * 4096, 4096).map(|d| d == vec![0xA5u8; 4096]).unwrap_or(false));

    Point {
        files,
        fs_kib: u64::from(files) * 16 + 8 * 4 + burst * 4,
        scanned_blocks: report.scanned_blocks,
        records: report.records,
        replay_ms: report.disk_busy_us as f64 / 1000.0,
        tokens_reestablished: after.tokens_reestablished - before.tokens_reestablished,
        replayed_pages: after.recovery_replayed_pages - before.recovery_replayed_pages,
        grace_waits: after.grace_waits - before.grace_waits,
        verified,
    }
}

fn parse_args() -> (bool, u32, u64) {
    let mut json = false;
    let mut files = 64u32;
    let mut burst = 8u64;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json = true,
            "--files" => files = args.next().and_then(|v| v.parse().ok()).expect("--files N"),
            "--burst" => burst = args.next().and_then(|v| v.parse().ok()).expect("--burst N"),
            other => panic!("unknown flag {other:?} (supported: --json --files N --burst N)"),
        }
    }
    (json, files, burst)
}

fn main() {
    let (json, files, burst) = parse_args();
    let sweep: Vec<Point> = [1u32, 2, 4, 8].iter().map(|&m| run(files * m, burst)).collect();

    if json {
        let rows: Vec<String> = sweep
            .iter()
            .map(|p| {
                format!(
                    "{{\"files\": {}, \"fs_kib\": {}, \"scanned_blocks\": {}, \
                     \"log_records\": {}, \"replay_ms\": {:.2}, \
                     \"tokens_reestablished\": {}, \"replayed_pages\": {}, \
                     \"grace_waits\": {}, \"verified\": {}}}",
                    p.files,
                    p.fs_kib,
                    p.scanned_blocks,
                    p.records,
                    p.replay_ms,
                    p.tokens_reestablished,
                    p.replayed_pages,
                    p.grace_waits,
                    p.verified
                )
            })
            .collect();
        println!(
            "{{\"bench\": \"t13_crash_restart\", \"burst_pages\": {burst}, \
             \"sweep\": [{}]}}",
            rows.join(", ")
        );
        return;
    }

    println!("T13: crash-restart pipeline — FS size swept, {burst}-page dirty burst fixed\n");
    header(&[
        "files",
        "fs KiB",
        "scan blocks",
        "log records",
        "replay ms",
        "tokens re-est",
        "replayed pages",
        "verified",
    ]);
    for p in &sweep {
        row(&[
            &p.files,
            &p.fs_kib,
            &p.scanned_blocks,
            &p.records,
            &f2(p.replay_ms),
            &p.tokens_reestablished,
            &p.replayed_pages,
            &p.verified,
        ]);
    }
    println!("\nExpected shape (paper §2.2): scan blocks and replay ms stay roughly");
    println!("flat as the file system grows 8x — recovery is proportional to the");
    println!("active log. The client replays exactly the burst ({burst} pages) after");
    println!("reestablishing its tokens inside the grace window; 'verified' confirms");
    println!("no update was lost across the crash.");
}
