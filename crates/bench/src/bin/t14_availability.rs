//! T14 — read availability under a primary outage (§3.8 replica
//! promotion + the fault-injection plane).
//!
//! A volume's primary is partitioned away (a deterministic `Drop` rule
//! on the fault plane — the server is alive, just unreachable), and a
//! fresh reader probes every file. Two modes are compared at each
//! outage age:
//!
//! * **baseline** — no read-only replica: every probe burns its retry
//!   budget and reports honest `Unavailable`;
//! * **replica** — the volume was lazily replicated (§3.8) before the
//!   outage: probes fail over through the VLDB to the replica and are
//!   served *bounded-stale*, each response stamped with its staleness.
//!
//! After the partition heals, the reader reconciles: reads come back
//! primary-served (stale stamp zero) and a write goes through. The
//! bench verifies zero lost updates across the whole episode.
//!
//! Flags: `--json` for machine-readable output (validated by
//! `jsoncheck` in verify.sh), `--files N` for the probe set size.

use decorum_dfs::rpc::{Addr, FaultAction, FaultRule, FaultSchedule};
use decorum_dfs::types::VolumeId;
use decorum_dfs::Cell;
use dfs_bench::{f2, header, row};

struct Point {
    outage_s: u64,
    replica: bool,
    reads_ok: u32,
    reads_unavailable: u32,
    giveups: u64,
    stale_reads: u64,
    max_stale_ms: f64,
    reconciled: bool,
    lost_updates: u32,
}

/// One outage episode: build a cell, write `files` files, optionally
/// replicate the volume, partition the primary for `outage_s` simulated
/// seconds of staleness, probe every file, heal, reconcile, verify.
fn run(files: u32, outage_s: u64, replica: bool) -> Point {
    // A small budget keeps the baseline's honest give-ups fast; the
    // replica path never needs more than a few attempts anyway.
    std::env::set_var("DFS_RPC_RETRY_BUDGET", "6");
    let cell = Cell::builder().servers(2).build().expect("cell");
    cell.create_volume(0, VolumeId(1), "v").expect("volume");
    let writer = cell.new_client();
    let root = writer.root(VolumeId(1)).unwrap();
    let mut fids = Vec::new();
    for i in 0..files {
        let f = writer.create(root, &format!("f{i}"), 0o644).unwrap();
        writer.write(f.fid, 0, format!("payload-{i:04}").as_bytes()).unwrap();
        writer.fsync(f.fid).unwrap();
        fids.push(f.fid);
    }
    if replica {
        // 10 s staleness bound; the replica registers itself in the
        // VLDB so readers can find it when the primary is gone.
        cell.replicate_volume(0, 1, VolumeId(1), 10_000_000).unwrap();
    }

    // The outage: a one-way partition swallowing everything sent to
    // the primary. Deterministic (prob 100), no real-time burn.
    let primary = Addr::Server(cell.server(0).id());
    cell.net()
        .set_fault_schedule(FaultSchedule::seeded(7).rule(FaultRule::on(FaultAction::Drop).to(primary)));
    cell.clock().advance_secs(outage_s);

    // Fresh reader: nothing cached, every probe is a real RPC.
    let reader = cell.new_client();
    let mut reads_ok = 0u32;
    let mut reads_unavailable = 0u32;
    for (i, &fid) in fids.iter().enumerate() {
        match reader.read(fid, 0, 16) {
            Ok(bytes) => {
                assert_eq!(bytes, format!("payload-{i:04}").as_bytes(), "stale read lost an update");
                reads_ok += 1;
            }
            Err(_) => reads_unavailable += 1,
        }
    }
    let during = reader.stats();

    // Heal, then reconcile: the next read must be primary-served and a
    // write must flow again.
    cell.net().clear_faults();
    let read_back = reader.read(fids[0], 0, 16).map(|b| b == b"payload-0000").unwrap_or(false);
    let wrote = reader.write(fids[0], 0, b"reconciled!!").is_ok() && reader.fsync(fids[0]).is_ok();
    let reconciled = read_back && wrote;

    // Zero lost updates end to end, through yet another fresh client.
    let auditor = cell.new_client();
    let mut lost = 0u32;
    for (i, &fid) in fids.iter().enumerate() {
        let want = if i == 0 {
            b"reconciled!!".to_vec()
        } else {
            format!("payload-{i:04}").into_bytes()
        };
        if auditor.read(fid, 0, want.len()).ok().as_deref() != Some(want.as_slice()) {
            lost += 1;
        }
    }

    Point {
        outage_s,
        replica,
        reads_ok,
        reads_unavailable,
        giveups: during.unavailable_giveups,
        stale_reads: during.stale_reads,
        max_stale_ms: during.max_stale_us as f64 / 1000.0,
        reconciled,
        lost_updates: lost,
    }
}

fn parse_args() -> (bool, u32) {
    let mut json = false;
    let mut files = 16u32;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json = true,
            "--files" => files = args.next().and_then(|v| v.parse().ok()).expect("--files N"),
            other => panic!("unknown flag {other:?} (supported: --json --files N)"),
        }
    }
    (json, files)
}

fn main() {
    let (json, files) = parse_args();
    let mut sweep = Vec::new();
    for &outage_s in &[1u64, 2, 4, 8] {
        sweep.push(run(files, outage_s, false));
        sweep.push(run(files, outage_s, true));
    }

    if json {
        let rows: Vec<String> = sweep
            .iter()
            .map(|p| {
                format!(
                    "{{\"outage_s\": {}, \"replica\": {}, \"reads_ok\": {}, \
                     \"reads_unavailable\": {}, \"giveups\": {}, \"stale_reads\": {}, \
                     \"max_stale_ms\": {:.2}, \"reconciled\": {}, \"lost_updates\": {}}}",
                    p.outage_s,
                    p.replica,
                    p.reads_ok,
                    p.reads_unavailable,
                    p.giveups,
                    p.stale_reads,
                    p.max_stale_ms,
                    p.reconciled,
                    p.lost_updates
                )
            })
            .collect();
        println!(
            "{{\"bench\": \"t14_availability\", \"files\": {files}, \"sweep\": [{}]}}",
            rows.join(", ")
        );
        return;
    }

    println!("T14: read availability during a primary partition — {files} probe files\n");
    header(&[
        "outage s",
        "replica",
        "reads ok",
        "unavail",
        "give-ups",
        "stale reads",
        "max stale ms",
        "reconciled",
        "lost",
    ]);
    for p in &sweep {
        row(&[
            &p.outage_s,
            &p.replica,
            &p.reads_ok,
            &p.reads_unavailable,
            &p.giveups,
            &p.stale_reads,
            &f2(p.max_stale_ms),
            &p.reconciled,
            &p.lost_updates,
        ]);
    }
    println!("\nExpected shape (§3.8): without a replica every read during the");
    println!("outage is honestly Unavailable; with one, availability goes to 100%");
    println!("at a bounded, stamped staleness that tracks the outage age. Both");
    println!("modes reconcile after the heal with zero lost updates.");
}
