//! T17 — the scenario engine's headline run: a large mixed-workload
//! cluster with a mid-run crash/restart and a live volume migration,
//! executed twice to prove the replay contract.
//!
//! The default shape is 256 clients over 4 servers and 8 volumes, a
//! weighted read/write/metadata-churn/streaming-scan mix, a server
//! crash at 30% of the op budget, its restart (with a grace window) at
//! 36%, and a live volume move at 60% — all armed as op-count timeline
//! events on the shared driver ([`dfs_bench::scenario`]). The run
//! executes twice with the same seed and the report's deterministic
//! block (seed, op counts, per-class mix, op-stream digest) must come
//! back **byte-identical** — that, plus zero lost updates and zero
//! coherence-invariant failures, is the acceptance bar recorded in
//! EXPERIMENTS.md (BENCH_scenario.json).
//!
//! Ops may legitimately fail while the crashed server's retry budgets
//! expire (availability, honestly reported); what may never happen is
//! an acknowledged write disappearing or two caches disagreeing.
//!
//! Flags: `--json`, `--clients N`, `--servers N`, `--ops N` (per
//! client), `--seed N`.

use dfs_bench::emit::Obj;
use dfs_bench::scenario::{ClassSpec, Event, OpClass, Phase, RunReport, Scenario, Topology};
use dfs_bench::{f2, header, row};

const VOLUMES: u64 = 8;

struct Args {
    json: bool,
    clients: u32,
    servers: u32,
    ops: u64,
    seed: u64,
}

fn parse_args() -> Args {
    let mut a = Args { json: false, clients: 256, servers: 4, ops: 24, seed: 17 };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut num = |flag: &str| it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
            panic!("{flag} takes a number")
        });
        match arg.as_str() {
            "--json" => a.json = true,
            "--clients" => a.clients = num("--clients") as u32,
            "--servers" => a.servers = num("--servers") as u32,
            "--ops" => a.ops = num("--ops"),
            "--seed" => a.seed = num("--seed"),
            other => panic!(
                "unknown flag {other} (supported: --json --clients N --servers N --ops N --seed N)"
            ),
        }
    }
    assert!(a.servers >= 2, "t17 needs >= 2 servers (the timeline crashes one and moves a volume)");
    a
}

fn scenario(a: &Args) -> Scenario {
    let total = u64::from(a.clients) * a.ops;
    Scenario::new(
        "t17_scenario",
        a.seed,
        Topology::new(a.servers, a.clients, VOLUMES).latency_us(20).no_flusher(),
        vec![
            // Warm-up third: establish the write sets and read caches.
            Phase::new(
                "warm",
                a.ops / 3,
                vec![
                    ClassSpec::new(OpClass::Write, 1, 2).sharing(4).fsync_every(8),
                    ClassSpec::new(OpClass::Read, 1, 2).sharing(2),
                ],
            ),
            // Storm: the full weighted mix, under which the timeline
            // crashes a server, restarts it, and moves a volume.
            Phase::new(
                "storm",
                a.ops - a.ops / 3,
                vec![
                    ClassSpec::new(OpClass::Write, 2, 2).sharing(4).fsync_every(8),
                    ClassSpec::new(OpClass::Read, 4, 2).sharing(2),
                    ClassSpec::new(OpClass::MetadataChurn, 1, 3).sharing(2),
                    ClassSpec::new(OpClass::StreamingScan, 1, 1).sharing(4),
                ],
            ),
        ],
    )
    // Volume 1 starts on slot 0 (round-robin placement); slot 1 hosts
    // other volumes, crashes mid-storm, comes back with a 500 µs grace
    // window, and then *receives* the migrated volume under traffic.
    .at(total * 30 / 100, Event::CrashServer(1))
    .at(total * 36 / 100, Event::RestartServer { slot: 1, grace_us: 500 })
    .at(total * 60 / 100, Event::MoveVolume { volume: 1, dst_slot: 1 })
    .sample_every((total / 16).max(1))
}

fn report(a: &Args, r: &RunReport, replay_identical: bool) -> String {
    let ok = r.coherent() && replay_identical && r.events.iter().all(|e| e.ok);
    Obj::new()
        .field("bench", "t17_scenario")
        .field("replay_identical", replay_identical)
        .field("ok", ok)
        .field("ops_per_client", a.ops)
        .field_raw("run", &r.to_json())
        .render()
}

fn main() {
    let a = parse_args();
    let first = scenario(&a).run();
    let second = scenario(&a).run();
    let replay_identical = first.deterministic_json() == second.deterministic_json();

    if a.json {
        println!("{}", report(&a, &first, replay_identical));
        return;
    }

    println!(
        "T17: scenario engine — {} clients x {} servers, {} volumes, crash+restart+move\n",
        a.clients, a.servers, VOLUMES
    );
    header(&["total ops", "failed", "lost", "disagree", "torn", "faults", "moves", "RPCs"]);
    row(&[
        &first.total_ops,
        &first.failed_ops,
        &first.lost_updates,
        &first.agreement_failures,
        &first.torn_reads,
        &first.faults_injected,
        &first.server_moves,
        &first.net_calls,
    ]);
    println!("\nTimeline:");
    for e in &first.events {
        println!("  {:>16} armed at op {:>6}, fired at {:>6}, ok={}", e.event, e.at_op, e.fired_at, e.ok);
    }
    println!("\nDeterministic block: {}", first.deterministic_json());
    println!("Replay identical:    {replay_identical}");
    println!("Invariants:          {}", first.invariants_json());
    println!("Lock-free hit rate:  {}", f2(first.lockfree_hit_rate()));
    println!("\nExpected shape: the op stream replays byte-identically under the");
    println!("fixed seed (both runs above), no acknowledged write is lost and no");
    println!("two caches disagree — while ops during the crash window may fail");
    println!("honestly, and the migration costs only WrongServer redirects.");
}
