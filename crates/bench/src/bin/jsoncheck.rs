//! Validates that stdin is one well-formed JSON value.
//!
//! The `verify.sh` bench smoke stage pipes `--json` harness output
//! through this: exit 0 on valid JSON, exit 1 with a diagnostic
//! otherwise. No external JSON crates — see `dfs_bench::json`.

use std::io::Read;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut input = String::new();
    if let Err(e) = std::io::stdin().read_to_string(&mut input) {
        eprintln!("jsoncheck: read error: {e}");
        return ExitCode::FAILURE;
    }
    if input.trim().is_empty() {
        eprintln!("jsoncheck: empty input (bench produced no output)");
        return ExitCode::FAILURE;
    }
    match dfs_bench::json::validate(&input) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("jsoncheck: malformed JSON: {e}");
            ExitCode::FAILURE
        }
    }
}
