//! F2 — Figure 2: client-side structure, annotated from a live client.
//!
//! `--json` emits the live layer counters machine-readably (the ASCII
//! rendering is inherently human output).

use dfs_bench::emit::Obj;
use decorum_dfs::types::VolumeId;
use decorum_dfs::Cell;

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let cell = Cell::builder().servers(1).build().expect("cell");
    cell.create_volume(0, VolumeId(1), "v").expect("volume");
    let c = cell.new_client();
    let root = c.root(VolumeId(1)).unwrap();
    let f = c.create(root, "file", 0o644).unwrap();
    c.write(f.fid, 0, &vec![1u8; 8192]).unwrap();
    c.read(f.fid, 0, 4096).unwrap();
    c.lookup(root, "file").unwrap();
    c.lookup(root, "file").unwrap();
    let s = c.stats();

    if json {
        let out = Obj::new()
            .field("bench", "fig2_client_structure")
            .field("lookup_hits", s.lookup_hits)
            .field("lookup_misses", s.lookup_misses)
            .field("local_reads", s.local_reads)
            .field("remote_reads", s.remote_reads)
            .field("local_writes", s.local_writes)
            .field("write_token_fetches", s.write_token_fetches)
            .field("revocations", s.revocations)
            .field("queued_revocations", s.queued_revocations)
            .render();
        println!("{out}");
        return;
    }

    println!("Figure 2: DEcorum client structure (live layers)");
    println!();
    println!("+--------------------------------------------------+");
    println!("|  Vnode/VFS interface to the kernel*              |");
    println!("|   vnode layer (4.4): open/read/write/dirs        |");
    println!("|     | lookup hits {:>6}  misses {:>6}           |", s.lookup_hits, s.lookup_misses);
    println!("|   directory layer (4.3): per-lookup cache        |");
    println!("|   cache layer (4.2): status+data under tokens    |");
    println!("|     | local reads {:>6}  remote reads {:>6}     |", s.local_reads, s.remote_reads);
    println!("|     | local writes {:>5}  token fetches {:>5}    |", s.local_writes, s.write_token_fetches);
    println!("|   resource layer (4.1): connections + VLDB cache |");
    println!("|   [RPC]  <— two-way: revocations arrive here —>  |");
    println!("|     | revocations {:>6} (queued {:>4})           |", s.revocations, s.queued_revocations);
    println!("+--------------------------------------------------+");
    println!("(* kernel interface simulated by the public API)");
}
