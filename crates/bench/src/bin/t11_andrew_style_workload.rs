//! T11 (extension) — an Andrew-benchmark-style software-engineering
//! workload across the three consistency models.
//!
//! The paper's lineage (AFS, Howard et al. 1988) evaluated file systems
//! with the Andrew benchmark's phases: MakeDir, Copy, ScanDir, ReadAll,
//! and Make. This extension runs an equivalent phase mix through the
//! DEcorum cache manager and the NFS/AFS baselines on identical Episode
//! substrates, measuring the network cost of a representative developer
//! session — mostly-private working sets, exactly where callback/token
//! caching pays.

use dfs_baselines::{AfsClient, AfsServer, NfsClient, NfsServer};
use dfs_bench::{header, row};
use dfs_disk::{DiskConfig, SimDisk};
use dfs_episode::{Episode, FormatParams};
use dfs_rpc::Network;
use dfs_types::{ClientId, Fid, ServerId, SimClock, VolumeId};
use dfs_vfs::PhysicalFs;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const DIRS: u32 = 8;
const FILES_PER_DIR: u32 = 12;
const FILE_BYTES: usize = 6 * 1024;
const SCAN_PASSES: u32 = 3;
const READ_PASSES: u32 = 2;
const EDIT_ROUNDS: u32 = 40;

/// Abstract client operations so one driver runs all three systems.
trait Fs {
    fn root(&self) -> Fid;
    fn create(&self, dir: Fid, name: &str) -> Fid;
    fn write(&self, f: Fid, offset: u64, data: &[u8]);
    fn read(&self, f: Fid, offset: u64, len: usize) -> Vec<u8>;
    fn lookup(&self, dir: Fid, name: &str) -> Fid;
    fn getattr(&self, f: Fid);
    fn settle(&self, f: Fid); // close/fsync equivalent
}

struct DfsFs(std::sync::Arc<dfs_client::CacheManager>);
impl Fs for DfsFs {
    fn root(&self) -> Fid {
        self.0.root(VolumeId(1)).unwrap()
    }
    fn create(&self, dir: Fid, name: &str) -> Fid {
        self.0.create(dir, name, 0o644).unwrap().fid
    }
    fn write(&self, f: Fid, offset: u64, data: &[u8]) {
        self.0.write(f, offset, data).unwrap();
    }
    fn read(&self, f: Fid, offset: u64, len: usize) -> Vec<u8> {
        self.0.read(f, offset, len).unwrap()
    }
    fn lookup(&self, dir: Fid, name: &str) -> Fid {
        self.0.lookup(dir, name).unwrap().fid
    }
    fn getattr(&self, f: Fid) {
        self.0.getattr(f).unwrap();
    }
    fn settle(&self, f: Fid) {
        self.0.fsync(f).unwrap();
    }
}

struct NfsFs(std::sync::Arc<NfsClient>);
impl Fs for NfsFs {
    fn root(&self) -> Fid {
        self.0.root(VolumeId(1)).unwrap()
    }
    fn create(&self, dir: Fid, name: &str) -> Fid {
        self.0.create(dir, name, 0o644).unwrap().fid
    }
    fn write(&self, f: Fid, offset: u64, data: &[u8]) {
        self.0.write(f, offset, data).unwrap();
    }
    fn read(&self, f: Fid, offset: u64, len: usize) -> Vec<u8> {
        self.0.read(f, offset, len).unwrap()
    }
    fn lookup(&self, dir: Fid, name: &str) -> Fid {
        self.0.lookup(dir, name).unwrap().fid
    }
    fn getattr(&self, f: Fid) {
        self.0.getattr(f).unwrap();
    }
    fn settle(&self, _f: Fid) {}
}

struct AfsFs(std::sync::Arc<AfsClient>);
impl Fs for AfsFs {
    fn root(&self) -> Fid {
        self.0.root(VolumeId(1)).unwrap()
    }
    fn create(&self, dir: Fid, name: &str) -> Fid {
        self.0.create(dir, name, 0o644).unwrap().fid
    }
    fn write(&self, f: Fid, offset: u64, data: &[u8]) {
        self.0.write(f, offset, data).unwrap();
    }
    fn read(&self, f: Fid, offset: u64, len: usize) -> Vec<u8> {
        self.0.read(f, offset, len).unwrap()
    }
    fn lookup(&self, dir: Fid, name: &str) -> Fid {
        self.0.lookup(dir, name).unwrap().fid
    }
    fn getattr(&self, _f: Fid) {}
    fn settle(&self, f: Fid) {
        self.0.close(f).unwrap();
    }
}

/// The five Andrew-style phases. Directories are flattened to composite
/// names so the three baselines share one namespace shape.
fn drive(fs: &dyn Fs, clock: &SimClock) -> Vec<Fid> {
    let root = fs.root();
    let mut rng = StdRng::seed_from_u64(42);
    let mut files = Vec::new();
    // Phase 1+2: MakeDir + Copy (create the tree, write the sources).
    for d in 0..DIRS {
        for i in 0..FILES_PER_DIR {
            let f = fs.create(root, &format!("src{d}-file{i}.c"));
            let body: Vec<u8> = (0..FILE_BYTES).map(|_| rng.gen::<u8>() | 1).collect();
            fs.write(f, 0, &body);
            fs.settle(f);
            files.push(f);
        }
    }
    clock.advance_secs(5);
    // Phase 3: ScanDir (stat everything, several passes).
    for _ in 0..SCAN_PASSES {
        for d in 0..DIRS {
            for i in 0..FILES_PER_DIR {
                let f = fs.lookup(root, &format!("src{d}-file{i}.c"));
                fs.getattr(f);
            }
        }
        clock.advance_secs(2);
    }
    // Phase 4: ReadAll.
    for _ in 0..READ_PASSES {
        for &f in &files {
            let mut off = 0u64;
            while off < FILE_BYTES as u64 {
                fs.read(f, off, 4096);
                off += 4096;
            }
        }
        clock.advance_secs(2);
    }
    // Phase 5: Make (edit a few hot files repeatedly, re-read others).
    for round in 0..EDIT_ROUNDS {
        let hot = files[(round as usize * 7) % files.len()];
        fs.write(hot, (round as u64 * 97) % 4096, b"edited line of code\n");
        fs.read(hot, 0, 4096);
        let other = files[(round as usize * 13) % files.len()];
        fs.read(other, 0, 4096);
        if round % 8 == 7 {
            fs.settle(hot);
        }
        clock.advance_millis(250);
    }
    files
}

fn episode_substrate(clock: &SimClock) -> std::sync::Arc<Episode> {
    let disk = SimDisk::new(DiskConfig::with_blocks(64 * 1024));
    let ep = Episode::format(disk, clock.clone(), FormatParams::default()).unwrap();
    ep.create_volume(VolumeId(1), "v").unwrap();
    ep
}

fn main() {
    println!("T11 (extension): Andrew-style developer workload, one client");
    println!(
        "    {} files x {} KiB; scan x{}, read-all x{}, {} edit rounds\n",
        DIRS * FILES_PER_DIR,
        FILE_BYTES / 1024,
        SCAN_PASSES,
        READ_PASSES,
        EDIT_ROUNDS
    );
    header(&["system", "RPCs", "KiB on wire", "RPCs/file-op"]);
    let approx_ops: u64 = (DIRS * FILES_PER_DIR) as u64
        * (1 + 1 + SCAN_PASSES as u64 * 2 + READ_PASSES as u64 * 2)
        + EDIT_ROUNDS as u64 * 3;

    // DFS.
    {
        let cell = dfs_core::Cell::builder().servers(1).disk_blocks(64 * 1024).build().unwrap();
        cell.create_volume(0, VolumeId(1), "v").unwrap();
        let cm = cell.new_client();
        drive(&DfsFs(cm), cell.clock());
        let s = cell.net().stats();
        row(&[
            &"dfs (tokens)",
            &s.calls,
            &(s.bytes / 1024),
            &dfs_bench::f2(s.calls as f64 / approx_ops as f64),
        ]);
    }
    // NFS.
    {
        let clock = SimClock::new();
        let net = Network::new(clock.clone(), 500);
        let ep = episode_substrate(&clock);
        NfsServer::start(&net, ServerId(1), ep.mount(VolumeId(1)).unwrap());
        let c = NfsClient::new(net.clone(), ClientId(1), ServerId(1));
        drive(&NfsFs(c), &clock);
        let s = net.stats();
        row(&[
            &"nfs (3s ttl)",
            &s.calls,
            &(s.bytes / 1024),
            &dfs_bench::f2(s.calls as f64 / approx_ops as f64),
        ]);
    }
    // AFS.
    {
        let clock = SimClock::new();
        let net = Network::new(clock.clone(), 500);
        let ep = episode_substrate(&clock);
        AfsServer::start(&net, ServerId(1), ep.mount(VolumeId(1)).unwrap());
        let c = AfsClient::start(net.clone(), ClientId(1), ServerId(1));
        drive(&AfsFs(c), &clock);
        let s = net.stats();
        row(&[
            &"afs (callbacks)",
            &s.calls,
            &(s.bytes / 1024),
            &dfs_bench::f2(s.calls as f64 / approx_ops as f64),
        ]);
    }
    println!("\nExpected shape: for a mostly-private working set both AFS and DFS");
    println!("approach zero RPCs per operation after the copy phase, while NFS");
    println!("keeps revalidating every TTL expiry; DFS additionally writes back");
    println!("only on demand (no store-on-close of whole files).");
}
