//! T11 (extension) — an Andrew-benchmark-style software-engineering
//! session, now a scenario definition over [`dfs_bench::scenario`].
//!
//! The paper's lineage (AFS, Howard et al. 1988) evaluated file systems
//! with the Andrew benchmark's phases: MakeDir, Copy, ScanDir, ReadAll,
//! and Make. This extension expresses that phase mix declaratively —
//! one developer client against one server, mostly-private working
//! set, exactly where token caching pays:
//!
//! | Andrew phase    | scenario phase | op classes                      |
//! |-----------------|----------------|---------------------------------|
//! | MakeDir + Copy  | `copy`         | Write (fsync'd) + MetadataChurn |
//! | ScanDir         | `scan`         | Read (1-in-4 draws = getattr)   |
//! | ReadAll         | `readall`      | StreamingScan (4-page files)    |
//! | Make            | `make`         | Write + re-Read of hot files    |
//!
//! The shared driver owns seeding, execution, and the invariant checks
//! (no lost updates, prefilled content verified on every scan). The
//! cross-system NFS/AFS comparison this binary used to carry lives in
//! `t3_consistency_spectrum`; T11 now measures the thing the Andrew
//! workload is actually for — RPCs per operation and the lock-free hit
//! rate of a cached developer session (EXPERIMENTS.md notes the
//! re-baselining).
//!
//! Flags: `--json` (uniform scenario report), `--seed N`.

use dfs_bench::emit::Obj;
use dfs_bench::scenario::{ClassSpec, OpClass, Phase, Scenario, Topology};
use dfs_bench::{f2, header, row};

/// Files in the source tree (per sharing group — there is one group).
const FILES: u32 = 12;

fn andrew(seed: u64) -> Scenario {
    Scenario::new(
        "t11_andrew",
        seed,
        Topology::new(1, 1, 1).disk_blocks(64 * 1024),
        vec![
            // MakeDir + Copy: populate the tree, fsync in batches (the
            // editor's save cadence), with directory churn alongside.
            Phase::new(
                "copy",
                96,
                vec![
                    ClassSpec::new(OpClass::Write, 5, FILES).sharing(4).fsync_every(4),
                    ClassSpec::new(OpClass::MetadataChurn, 1, 8),
                ],
            ),
            // ScanDir: stat-heavy revisiting (1-in-4 Read draws are
            // getattrs — the §6.1 lock-free status path).
            Phase::new("scan", 72, vec![ClassSpec::new(OpClass::Read, 1, FILES).sharing(4)]),
            // ReadAll: sequential whole-file reads with verification.
            Phase::new(
                "readall",
                48,
                vec![ClassSpec::new(OpClass::StreamingScan, 1, FILES).sharing(4)],
            ),
            // Make: edit hot files, re-read sources, occasional fsync.
            Phase::new(
                "make",
                40,
                vec![
                    ClassSpec::new(OpClass::Write, 1, FILES).sharing(4).fsync_every(8),
                    ClassSpec::new(OpClass::Read, 2, FILES).sharing(4),
                ],
            ),
        ],
    )
}

fn main() {
    let mut json = false;
    let mut seed = 11u64;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json = true,
            "--seed" => seed = args.next().and_then(|v| v.parse().ok()).expect("--seed N"),
            other => panic!("unknown flag {other} (supported: --json --seed N)"),
        }
    }

    let r = andrew(seed).run();

    if json {
        let out = Obj::new()
            .field("bench", "t11_andrew_style_workload")
            .field_raw("run", &r.to_json())
            .render();
        println!("{out}");
        return;
    }

    println!("T11 (extension): Andrew-style developer workload as a scenario");
    println!("    phases: copy / scan / readall / make; {FILES} source files\n");
    header(&["total ops", "RPCs", "KiB on wire", "RPCs/op", "lock-free rate", "clean"]);
    row(&[
        &r.total_ops,
        &r.net_calls,
        &(r.net_bytes / 1024),
        &f2(r.net_calls as f64 / r.total_ops.max(1) as f64),
        &f2(r.lockfree_hit_rate()),
        &r.clean(),
    ]);
    println!("\nPer-class ops (read / write / metadata_churn / streaming_scan):");
    println!("  {:?}", r.class_ops);
    println!("\nExpected shape: for a mostly-private working set the token cache");
    println!("drives RPCs per operation toward zero after the copy phase — reads");
    println!("and getattrs are served locally (most without even a vnode lock),");
    println!("and write-backs happen on demand, not store-on-close of whole");
    println!("files. Compare `t3_consistency_spectrum` for the NFS/AFS baseline");
    println!("costs on an equivalent mix.");
}
