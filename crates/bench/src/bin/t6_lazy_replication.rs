//! T6 — §3.8: lazy replication keeps a replica "out of date by no more
//! than a fixed amount of time"; replica readers always see consistent
//! snapshots and never see data regress.

use dfs_bench::emit::{arr, Obj};
use dfs_bench::{f2, header, row};
use dfs_types::VolumeId;
use decorum_dfs::Cell;

fn run(bound_secs: u64) -> (f64, u64, bool) {
    let cell = Cell::builder().servers(2).build().unwrap();
    cell.create_volume(0, VolumeId(1), "src").unwrap();
    let writer = cell.new_client();
    let root = writer.root(VolumeId(1)).unwrap();
    let f = writer.create(root, "counter", 0o666).unwrap();
    writer.write(f.fid, 0, &0u64.to_le_bytes()).unwrap();
    writer.fsync(f.fid).unwrap();
    cell.replicate_volume(0, 1, VolumeId(1), bound_secs * 1_000_000).unwrap();

    // The replica reader hits server 2 directly.
    use dfs_rpc::{Addr, CallClass, Request, Response};
    let read_replica = || -> u64 {
        match cell
            .net()
            .call(
                Addr::Client(dfs_types::ClientId(99)),
                Addr::Server(cell.server(1).id()),
                None,
                CallClass::Normal,
                Request::FetchData { fid: f.fid, offset: 0, len: 8, want: None },
            )
            .unwrap()
        {
            Response::Data { bytes, .. } => u64::from_le_bytes(bytes.try_into().unwrap()),
            other => panic!("replica read failed: {other:?}"),
        }
    };

    // Master writes once per simulated second; the replication daemon
    // ticks every second; track worst observed staleness and monotonicity.
    let mut max_staleness = 0u64;
    let mut last_seen = 0u64;
    let mut monotone = true;
    let mut refreshes = 0u64;
    // Fixed 20-minute run so refresh counts are comparable across bounds.
    for second in 1..=1200u64 {
        writer.write(f.fid, 0, &second.to_le_bytes()).unwrap();
        writer.fsync(f.fid).unwrap();
        cell.clock().advance_secs(1);
        cell.replication_tick(1).unwrap();
        let seen = read_replica();
        if seen < last_seen {
            monotone = false;
        }
        last_seen = seen;
        max_staleness = max_staleness.max(second - seen);
    }
    refreshes += cell.server(1).stats().replica_refreshes;
    (max_staleness as f64, refreshes, monotone)
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let sweep: Vec<(u64, (f64, u64, bool))> =
        [2u64, 10, 60, 600].iter().map(|&b| (b, run(b))).collect();

    if json {
        let rows = arr(sweep.iter().map(|&(bound, (stale, refreshes, monotone))| {
            Obj::new()
                .field("bound_s", bound)
                .field("max_staleness_s", stale)
                .field("refreshes", refreshes)
                .field("monotone", monotone)
                .field("within_bound", stale <= bound as f64)
        }));
        let out = Obj::new()
            .field("bench", "t6_lazy_replication")
            .field_raw("sweep", &rows)
            .render();
        println!("{out}");
        return;
    }

    println!("T6: lazy replication staleness (writer @1/s; replication tick @1/s)\n");
    header(&["bound s", "max staleness s", "refreshes", "monotone"]);
    for &(bound, (stale, refreshes, monotone)) in &sweep {
        row(&[&bound, &f2(stale), &refreshes, &monotone]);
    }
    println!("\nExpected shape (paper): observed staleness stays at or under the");
    println!("configured bound; replicas never regress; tighter bounds cost more");
    println!("refreshes (and §3.8 warns bounds under ~10 minutes are expensive).");
}
