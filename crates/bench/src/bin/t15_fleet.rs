//! T15 — the fleet layer (§2.1 + §3.4): aggregate throughput of a
//! volume-sharded cell as the server count grows, with a live volume
//! migration in the middle of the run.
//!
//! A fixed workload (8 volumes, one client per volume, `--files` small
//! files each) is spread round-robin over 1/2/4/8 servers. Halfway
//! through, volume 1 is live-migrated to another server while its
//! client keeps issuing operations — the stale location cache is
//! resolved by `WrongServer` hints, and every operation must succeed.
//!
//! Throughput is operations per simulated second of *critical-path*
//! disk time: disks are the per-server bottleneck resource and servers
//! run in parallel, so the fleet's makespan is the busiest disk's time.
//! Content verification through a fresh client at the end makes "zero
//! lost updates" a measured property, not an assumption.
//!
//! Flags: `--json` emits machine-readable results (validated by
//! `jsoncheck` in the verify.sh smoke stage); `--files N` sets files
//! per volume; `--servers N` restricts the sweep to one fleet size.

use dfs_bench::{f2, header, row};
use decorum_dfs::types::VolumeId;
use decorum_dfs::{Cell, Fleet};

const VOLUMES: u64 = 8;

struct Point {
    servers: u32,
    total_ops: u64,
    max_busy_ms: f64,
    ops_per_sec: f64,
    move_completed: bool,
    redirects: u64,
    lost_updates: u64,
    all_ops_ok: bool,
}

fn payload(vol: u64, file: u32) -> Vec<u8> {
    vec![(vol as u8).wrapping_mul(31).wrapping_add(file as u8); 4096]
}

/// Runs the fixed workload over a fleet of `servers` servers.
fn run(servers: u32, files: u32) -> Point {
    let cell = Cell::builder().servers(servers).build().expect("cell");
    let fleet = Fleet::new(cell);
    for v in 1..=VOLUMES {
        fleet.create_volume(VolumeId(v), &format!("vol{v}")).expect("volume");
    }
    let clients: Vec<_> = (0..VOLUMES).map(|_| fleet.cell().new_client()).collect();
    let roots: Vec<_> = (0..VOLUMES)
        .map(|v| clients[v as usize].root(VolumeId(v + 1)).expect("root"))
        .collect();

    let mut ops = 0u64;
    let mut failures = 0u64;
    // Interleave clients file-by-file so every server is active across
    // the whole run (and the mid-run move happens under live traffic
    // from all of them).
    let mut do_phase = |range: std::ops::Range<u32>| {
        for i in range {
            for v in 0..VOLUMES {
                let c = &clients[v as usize];
                let ok = (|| {
                    let f = c.create(roots[v as usize], &format!("f{i}"), 0o644)?;
                    c.write(f.fid, 0, &payload(v + 1, i))?;
                    c.fsync(f.fid)
                })()
                .is_ok();
                ops += 3;
                if !ok {
                    failures += 1;
                }
            }
        }
    };

    do_phase(0..files / 2);
    // The mid-run live migration: volume 1 moves to the next slot while
    // its client's location cache still points at the old owner.
    let move_completed = if servers > 1 {
        let src = fleet.server_of(VolumeId(1)).expect("owner");
        fleet.move_volume(VolumeId(1), (src + 1) % servers as usize).is_ok()
    } else {
        true // nowhere to move in a 1-server fleet; not a failure
    };
    do_phase(files / 2..files);

    // Zero-lost-updates check: a fresh client (empty caches, straight
    // VLDB resolution) re-reads every byte ever written.
    let fresh = fleet.cell().new_client();
    let mut lost_updates = 0u64;
    for v in 1..=VOLUMES {
        let root = fresh.root(VolumeId(v)).expect("root");
        for i in 0..files {
            let good = fresh
                .lookup(root, &format!("f{i}"))
                .and_then(|f| fresh.read(f.fid, 0, 4096))
                .map(|d| d == payload(v, i))
                .unwrap_or(false);
            if !good {
                lost_updates += 1;
            }
        }
    }

    let mut max_busy_us = 0u64;
    let mut redirects = 0u64;
    let mut moves = 0u64;
    for s in 0..fleet.server_count() {
        max_busy_us = max_busy_us.max(fleet.cell().server_disk_stats(s).busy_us);
        let st = fleet.cell().server(s).stats();
        redirects += st.wrong_server_redirects;
        moves += st.moves;
    }
    Point {
        servers,
        total_ops: ops,
        max_busy_ms: max_busy_us as f64 / 1000.0,
        ops_per_sec: ops as f64 * 1e6 / (max_busy_us.max(1) as f64),
        move_completed: move_completed && (servers == 1 || moves == 1),
        redirects,
        lost_updates,
        all_ops_ok: failures == 0,
    }
}

fn parse_args() -> (bool, u32, Option<u32>) {
    let mut json = false;
    let mut files = 12u32;
    let mut servers = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json = true,
            "--files" => files = args.next().and_then(|v| v.parse().ok()).expect("--files N"),
            "--servers" => {
                servers = Some(args.next().and_then(|v| v.parse().ok()).expect("--servers N"))
            }
            other => panic!("unknown flag {other:?} (supported: --json --files N --servers N)"),
        }
    }
    (json, files, servers)
}

fn main() {
    let (json, files, only) = parse_args();
    let sizes: Vec<u32> = match only {
        Some(n) => vec![n],
        None => vec![1, 2, 4, 8],
    };
    let sweep: Vec<Point> = sizes.iter().map(|&n| run(n, files)).collect();
    let base = sweep[0].ops_per_sec;

    if json {
        let rows: Vec<String> = sweep
            .iter()
            .map(|p| {
                format!(
                    "{{\"servers\": {}, \"total_ops\": {}, \"max_disk_busy_ms\": {:.2}, \
                     \"agg_ops_per_sec\": {:.1}, \"speedup\": {:.2}, \
                     \"move_completed\": {}, \"redirects\": {}, \
                     \"lost_updates\": {}, \"all_ops_ok\": {}}}",
                    p.servers,
                    p.total_ops,
                    p.max_busy_ms,
                    p.ops_per_sec,
                    p.ops_per_sec / base,
                    p.move_completed,
                    p.redirects,
                    p.lost_updates,
                    p.all_ops_ok
                )
            })
            .collect();
        println!(
            "{{\"bench\": \"t15_fleet\", \"volumes\": {VOLUMES}, \"files_per_volume\": {files}, \
             \"sweep\": [{}]}}",
            rows.join(", ")
        );
        return;
    }

    println!("T15: fleet scaling — {VOLUMES} volumes, {files} files each, mid-run move\n");
    header(&[
        "servers",
        "total ops",
        "busy ms",
        "agg ops/s",
        "speedup",
        "move ok",
        "redirects",
        "lost",
        "all ok",
    ]);
    for p in &sweep {
        row(&[
            &p.servers,
            &p.total_ops,
            &f2(p.max_busy_ms),
            &f2(p.ops_per_sec),
            &format!("{:.2}x", p.ops_per_sec / base),
            &p.move_completed,
            &p.redirects,
            &p.lost_updates,
            &p.all_ops_ok,
        ]);
    }
    println!("\nExpected shape (paper §2.1): aggregate throughput grows with the");
    println!("server count — volumes are the unit of sharding, and the busiest");
    println!("disk's time shrinks as they spread out. The mid-run migration");
    println!("completes under live traffic with zero failed operations and zero");
    println!("lost updates; its cost is a handful of WrongServer redirects.");
}
