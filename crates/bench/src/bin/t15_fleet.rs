//! T15 — the fleet layer (§2.1 + §3.4): aggregate throughput of a
//! volume-sharded cell as the server count grows, with a live volume
//! migration in the middle of the run.
//!
//! The sweep is a scenario definition over [`dfs_bench::scenario`]: a
//! fixed fsync-heavy write workload plus metadata churn spread over 8
//! volumes (round-robin across 1/2/4/8 servers), with a mid-run
//! [`Event::MoveVolume`] armed at the halfway op count so the
//! migration happens under live traffic from every client. The shared
//! driver owns seeding, the invariant checks (zero lost updates,
//! cross-client agreement), and the stats plumbing; this binary is
//! just the spec and the report shaping.
//!
//! Throughput is operations per simulated second of *critical-path*
//! disk time: disks are the per-server bottleneck resource and servers
//! run in parallel, so the fleet's makespan is the busiest disk's time.
//!
//! Flags: `--json` emits machine-readable results (validated by
//! `jsoncheck` in the verify.sh smoke stage); `--ops N` sets ops per
//! client; `--servers N` restricts the sweep to one fleet size.

use dfs_bench::emit::{arr, Obj};
use dfs_bench::scenario::{ClassSpec, Event, OpClass, Phase, Scenario, Topology};
use dfs_bench::{f2, header, row};

const VOLUMES: u64 = 8;
const CLIENTS: u32 = 8;

/// The fixed workload over `servers` servers: private files, every
/// write fsync'd in pairs (the create/write/fsync cadence of the old
/// hand-rolled loop), a metadata-churn seasoning, and — when there is
/// somewhere to move to — volume 1 live-migrated at the halfway point.
fn scenario(servers: u32, ops_per_client: u64) -> Scenario {
    let total = u64::from(CLIENTS) * ops_per_client;
    let mut sc = Scenario::new(
        "t15_fleet",
        15,
        Topology::new(servers, CLIENTS, VOLUMES),
        vec![Phase::new(
            "load",
            ops_per_client,
            vec![
                ClassSpec::new(OpClass::Write, 3, 6).fsync_every(2),
                ClassSpec::new(OpClass::MetadataChurn, 1, 4),
            ],
        )],
    );
    if servers > 1 {
        // Volume 1 starts on slot 0 (round-robin placement); move it
        // to the next slot while the clients' location caches still
        // point at the old owner.
        sc = sc.at(total / 2, Event::MoveVolume { volume: 1, dst_slot: 1 });
    }
    sc
}

struct Point {
    servers: u32,
    total_ops: u64,
    busy_ms: f64,
    ops_per_sec: f64,
    move_completed: bool,
    redirects: u64,
    lost_updates: u64,
    all_ops_ok: bool,
}

fn run(servers: u32, ops_per_client: u64) -> Point {
    let r = scenario(servers, ops_per_client).run();
    Point {
        servers,
        total_ops: r.total_ops,
        busy_ms: r.disk_busy_us as f64 / 1000.0,
        ops_per_sec: r.ops_per_disk_sec(),
        // In a 1-server fleet there is nowhere to move — not a failure.
        move_completed: servers == 1 || (r.server_moves >= 1 && r.events.iter().all(|e| e.ok)),
        redirects: r.server_redirects + r.client_stats.wrong_server_redirects,
        lost_updates: r.lost_updates,
        all_ops_ok: r.failed_ops == 0 && r.clean(),
    }
}

fn parse_args() -> (bool, u64, Option<u32>) {
    let mut json = false;
    let mut ops = 36u64;
    let mut servers = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json = true,
            "--ops" => ops = args.next().and_then(|v| v.parse().ok()).expect("--ops N"),
            "--servers" => {
                servers = Some(args.next().and_then(|v| v.parse().ok()).expect("--servers N"))
            }
            other => panic!("unknown flag {other:?} (supported: --json --ops N --servers N)"),
        }
    }
    (json, ops, servers)
}

fn main() {
    let (json, ops, only) = parse_args();
    let sizes: Vec<u32> = match only {
        Some(n) => vec![n],
        None => vec![1, 2, 4, 8],
    };
    let sweep: Vec<Point> = sizes.iter().map(|&n| run(n, ops)).collect();
    let base = sweep[0].ops_per_sec;

    if json {
        let rows = arr(sweep.iter().map(|p| {
            Obj::new()
                .field("servers", p.servers)
                .field("total_ops", p.total_ops)
                .field("max_disk_busy_ms", p.busy_ms)
                .field("agg_ops_per_sec", p.ops_per_sec)
                .field("speedup", p.ops_per_sec / base)
                .field("move_completed", p.move_completed)
                .field("redirects", p.redirects)
                .field("lost_updates", p.lost_updates)
                .field("all_ops_ok", p.all_ops_ok)
        }));
        let out = Obj::new()
            .field("bench", "t15_fleet")
            .field("volumes", VOLUMES)
            .field("clients", CLIENTS)
            .field("ops_per_client", ops)
            .field_raw("sweep", &rows)
            .render();
        println!("{out}");
        return;
    }

    println!("T15: fleet scaling — {VOLUMES} volumes, {CLIENTS} clients, mid-run move\n");
    header(&[
        "servers",
        "total ops",
        "busy ms",
        "agg ops/s",
        "speedup",
        "move ok",
        "redirects",
        "lost",
        "all ok",
    ]);
    for p in &sweep {
        row(&[
            &p.servers,
            &p.total_ops,
            &f2(p.busy_ms),
            &f2(p.ops_per_sec),
            &format!("{:.2}x", p.ops_per_sec / base),
            &p.move_completed,
            &p.redirects,
            &p.lost_updates,
            &p.all_ops_ok,
        ]);
    }
    println!("\nExpected shape (paper §2.1): aggregate throughput grows with the");
    println!("server count — volumes are the unit of sharding, and the busiest");
    println!("disk's time shrinks as they spread out. The mid-run migration");
    println!("completes under live traffic with zero failed operations and zero");
    println!("lost updates; its cost is a handful of WrongServer redirects.");
}
