//! T2 — §2.2 claim: "The time spent in recovery is proportional to the
//! size of the active portion of the log, not (as with fsck) to the size
//! of the file system."
//!
//! The file system size is swept while the in-flight work at crash time
//! is held constant; Episode restart cost should stay flat while FFS
//! fsck cost grows with the disk.

use dfs_bench::emit::{arr, Obj};
use dfs_bench::{f2, header, row};
use dfs_disk::{DiskConfig, SimDisk};
use dfs_episode::{Episode, FormatParams};
use dfs_ffs::Ffs;
use dfs_types::{SimClock, VolumeId};
use dfs_vfs::{Credentials, PhysicalFs, Vfs};

/// Fill ~10% of the disk, then crash with a fixed amount of unsynced
/// work in flight.
fn episode_case(blocks: u32) -> (u64, u64) {
    let disk = SimDisk::new(DiskConfig::with_blocks(blocks));
    let clock = SimClock::new();
    let ep = Episode::format(disk.clone(), clock.clone(), FormatParams::default()).unwrap();
    ep.create_volume(VolumeId(1), "v").unwrap();
    let v = PhysicalFs::mount(&*ep, VolumeId(1)).unwrap();
    let cred = Credentials::system();
    let root = v.root().unwrap();
    let files = blocks / 256; // Content scales with disk size.
    for i in 0..files {
        let f = v.create(&cred, root, &format!("f{i}"), 0o644).unwrap();
        v.write(&cred, f.fid, 0, &vec![i as u8; 16 * 1024]).unwrap();
        if i % 50 == 49 {
            ep.sync_all().unwrap();
        }
    }
    ep.sync_all().unwrap();
    // Fixed-size in-flight burst, synced to the log but not checkpointed.
    for i in 0..64 {
        let f = v.create(&cred, root, &format!("hot{i}"), 0o644).unwrap();
        v.write(&cred, f.fid, 0, &[1u8; 1024]).unwrap();
    }
    ep.sync_log().unwrap();
    disk.crash(None);
    disk.power_on();
    let before = disk.stats().busy_us;
    let (_, report) = Episode::open(disk.clone(), clock).unwrap();
    (report.scanned_blocks, disk.stats().busy_us - before)
}

fn ffs_case(blocks: u32) -> (u64, u64) {
    let disk = SimDisk::new(DiskConfig::with_blocks(blocks));
    let fs = Ffs::format(disk.clone(), SimClock::new(), VolumeId(1)).unwrap();
    let cred = Credentials::system();
    let root = fs.root().unwrap();
    let files = blocks / 256;
    for i in 0..files {
        let f = fs.create(&cred, root, &format!("f{i}"), 0o644).unwrap();
        fs.write(&cred, f.fid, 0, &vec![i as u8; 16 * 1024]).unwrap();
    }
    fs.sync().unwrap();
    for i in 0..64 {
        let f = fs.create(&cred, root, &format!("hot{i}"), 0o644).unwrap();
        fs.write(&cred, f.fid, 0, &[1u8; 1024]).unwrap();
    }
    disk.crash(None);
    disk.power_on();
    let (_, report) = Ffs::open(disk, SimClock::new(), VolumeId(1)).unwrap();
    (report.blocks_scanned, report.disk_busy_us)
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let sweep: Vec<(u32, (u64, u64), (u64, u64))> =
        [16 * 1024u32, 32 * 1024, 64 * 1024, 128 * 1024, 256 * 1024]
            .iter()
            .map(|&blocks| (blocks, episode_case(blocks), ffs_case(blocks)))
            .collect();

    if json {
        let rows = arr(sweep.iter().map(|&(blocks, (eb, eus), (fb, fus))| {
            Obj::new()
                .field("disk_mib", blocks / 256)
                .field("episode_blocks", eb)
                .field("episode_busy_us", eus)
                .field("fsck_blocks", fb)
                .field("fsck_busy_us", fus)
                .field("fsck_over_episode", fus as f64 / eus.max(1) as f64)
        }));
        let out = Obj::new()
            .field("bench", "t2_recovery_scaling")
            .field_raw("sweep", &rows)
            .render();
        println!("{out}");
        return;
    }

    println!("T2: restart cost vs file-system size (fixed in-flight work at crash)");
    println!("    Episode replays the active log; FFS runs a full fsck.\n");
    header(&[
        "disk MiB",
        "episode blocks",
        "episode ms",
        "fsck blocks",
        "fsck ms",
        "fsck/episode",
    ]);
    for &(blocks, (eb, eus), (fb, fus)) in &sweep {
        row(&[
            &(blocks / 256),
            &eb,
            &f2(eus as f64 / 1000.0),
            &fb,
            &f2(fus as f64 / 1000.0),
            &dfs_bench::ratio(fus as f64, eus as f64),
        ]);
    }
    println!("\nExpected shape (paper): the episode column stays roughly flat while");
    println!("fsck cost grows linearly with the file system, so the ratio widens.");
}
