//! F3 — Figure 3: the open-token compatibility matrix, rendered from
//! the same predicate the token manager uses at grant time.
//!
//! `--json` emits the matrix as named rows of booleans.

use dfs_bench::emit::{arr, Obj};
use dfs_token::{open_compatible, TokenTypes};

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    if json {
        let subs = TokenTypes::open_subtypes();
        let rows = arr(subs.iter().map(|&(x, xname)| {
            Obj::new()
                .field("open", xname)
                .field_arr("compatible_with", subs.iter().map(|&(y, _)| open_compatible(x, y)))
        }));
        let out = Obj::new()
            .field("bench", "fig3_open_token_matrix")
            .field_arr("opens", subs.iter().map(|&(_, name)| name))
            .field_raw("matrix", &rows)
            .render();
        println!("{out}");
        return;
    }
    println!("{}", dfs_token::render_open_matrix());
    println!("(yes = both opens may be held by different hosts; - = conflict)");
    println!("Rows/columns: read, write, execute, shared-read, excl-write.");
    println!("Note the UNIX rule: write vs execute conflict (ETXTBSY, §5.4).");
}
