//! F3 — Figure 3: the open-token compatibility matrix, rendered from
//! the same predicate the token manager uses at grant time.

fn main() {
    println!("{}", dfs_token::render_open_matrix());
    println!("(yes = both opens may be held by different hosts; - = conflict)");
    println!("Rows/columns: read, write, execute, shared-read, excl-write.");
    println!("Note the UNIX rule: write vs execute conflict (ETXTBSY, §5.4).");
}
