//! T9 — §5.5: the write/read handoff between two clients, counting the
//! RPCs per handoff and verifying single-system semantics: a write is
//! visible to the other client as soon as the write call returns.
//!
//! `--clients A,B,...` adds a token hot-path sweep: N clients share one
//! file under a read-dominated mix with periodic writes, so every write
//! storms the token manager with revocations while the reads between
//! storms ride the client's lock-free snapshot path. Per-N throughput
//! and mean op latency come out on stdout (or as JSON with `--json`).

use dfs_bench::{f2, header, row};
use dfs_types::{DfsError, DfsResult, VolumeId};
use decorum_dfs::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Retries an op that lost the token-grant race too many times in a
/// row (`grant` gives up with `Timeout` after 64 revocation rounds —
/// at 64 clients on one file that is contention, not a hang).
fn with_retry<T>(mut f: impl FnMut() -> DfsResult<T>) -> T {
    let mut tries = 0;
    loop {
        match f() {
            Ok(v) => return v,
            Err(DfsError::Timeout) if tries < 32 => {
                tries += 1;
                std::thread::yield_now();
            }
            Err(e) => panic!("hot-path op failed: {e:?}"),
        }
    }
}

struct Args {
    json: bool,
    ops: u64,
    clients: Vec<usize>,
}

fn parse_args() -> Args {
    let mut a = Args { json: false, ops: 400, clients: vec![2, 8] };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => a.json = true,
            "--ops" => a.ops = it.next().and_then(|v| v.parse().ok()).expect("--ops N"),
            "--clients" => {
                let list = it.next().expect("--clients A,B,...");
                a.clients = list
                    .split(',')
                    .map(|s| s.trim().parse().expect("--clients takes integers"))
                    .collect();
            }
            other => panic!("unknown flag {other}"),
        }
    }
    a
}

struct Pingpong {
    handoffs: u64,
    rpcs: u64,
    bytes: u64,
    sim_net_ms: f64,
    stale: u64,
    by_label: Vec<(String, u64)>,
}

fn pingpong() -> Pingpong {
    let cell = Cell::builder().servers(1).build().unwrap();
    cell.create_volume(0, VolumeId(1), "v").unwrap();
    let a = cell.new_client();
    let b = cell.new_client();
    let root = a.root(VolumeId(1)).unwrap();
    let f = a.create(root, "pingpong", 0o666).unwrap();
    a.write(f.fid, 0, &0u64.to_le_bytes()).unwrap();

    const HANDOFFS: u64 = 100;
    let before = cell.net().stats();
    let mut violations = 0u64;
    for i in 1..=HANDOFFS {
        let (writer, reader) = if i % 2 == 0 { (&a, &b) } else { (&b, &a) };
        writer.write(f.fid, 0, &i.to_le_bytes()).unwrap();
        let seen = u64::from_le_bytes(reader.read(f.fid, 0, 8).unwrap().try_into().unwrap());
        if seen != i {
            violations += 1;
        }
    }
    let d = cell.net().stats().since(&before);
    let mut labels: Vec<_> = d.by_label.iter().map(|(l, c)| (l.to_string(), *c)).collect();
    labels.sort();
    Pingpong {
        handoffs: HANDOFFS,
        rpcs: d.calls,
        bytes: d.bytes,
        sim_net_ms: d.latency_us as f64 / 1000.0,
        stale: violations,
        by_label: labels,
    }
}

struct SweepPoint {
    clients: usize,
    total_ops: u64,
    wall_s: f64,
    ops_per_s: f64,
    mean_latency_us: f64,
    /// RPCs issued during the timed region, and the simulated network
    /// time they were charged (latency × calls) — the deterministic
    /// cost currency; wall clock on an oversubscribed host is noise.
    rpcs: u64,
    sim_net_ms: f64,
    ops_per_sim_net_s: f64,
    lockfree_reads: u64,
    local_reads: u64,
    ok: bool,
}

/// N clients on one shared file: read-dominated with a write every 64th
/// op per client, so token grants, revocation storms, and snapshot-path
/// reads all land on the hot path under real thread contention.
fn hotpath(clients: usize, ops_per_client: u64) -> SweepPoint {
    let cell = Cell::builder().servers(1).pools(12, 6).build().unwrap();
    cell.create_volume(0, VolumeId(1), "v").unwrap();
    let cms: Vec<_> = (0..clients).map(|_| cell.new_client()).collect();
    let root = cms[0].root(VolumeId(1)).unwrap();
    let f = cms[0].create(root, "hot", 0o666).unwrap();
    cms[0].write(f.fid, 0, &vec![7u8; 4096]).unwrap();
    cms[0].fsync(f.fid).unwrap();

    let completed = Arc::new(AtomicU64::new(0));
    let net_before = cell.net().stats();
    let t0 = std::time::Instant::now();
    let threads: Vec<_> = cms
        .iter()
        .enumerate()
        .map(|(ci, cm)| {
            let cm = cm.clone();
            let fid = f.fid;
            let completed = completed.clone();
            std::thread::spawn(move || {
                for op in 0..ops_per_client {
                    if op % 64 == 63 {
                        with_retry(|| cm.write(fid, (op % 8) * 128, &[ci as u8; 64]));
                    } else if op % 3 == 0 {
                        with_retry(|| cm.getattr(fid));
                    } else {
                        with_retry(|| cm.read(fid, (op % 8) * 128, 64));
                    }
                    completed.fetch_add(1, Ordering::Relaxed);
                }
            })
        })
        .collect();

    // Watchdog: if total progress stalls for 10 s of wall time, flag it.
    let total_ops = clients as u64 * ops_per_client;
    let mut stalled = false;
    let mut last = 0u64;
    let mut last_change = std::time::Instant::now();
    loop {
        let now = completed.load(Ordering::Relaxed);
        if now >= total_ops {
            break;
        }
        if now != last {
            last = now;
            last_change = std::time::Instant::now();
        } else if last_change.elapsed().as_secs() > 10 {
            stalled = true;
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    for t in threads {
        t.join().unwrap();
    }
    let wall = t0.elapsed().as_secs_f64();
    let nd = cell.net().stats().since(&net_before);

    let mut agree = true;
    let reference = cms[0].read(f.fid, 0, 1024).unwrap();
    for (i, cm) in cms.iter().enumerate().skip(1) {
        let got = cm.read(f.fid, 0, 1024).unwrap();
        if got != reference {
            agree = false;
            // Diagnostics on stderr (stdout stays clean for --json):
            // where the views differ and whether the staleness is
            // sticky (a lost revocation) or a transient race.
            let d = got.iter().zip(&reference).position(|(a, b)| a != b).unwrap_or(0);
            let again = cm.read(f.fid, 0, 1024).unwrap();
            let s = cm.stats();
            eprintln!(
                "t9: client {i} disagrees at byte {d}: got {} want {} \
                 (reread disagrees: {}, dirty={}, lockfree={}, local={}, remote={})",
                got[d],
                reference[d],
                again != reference,
                cm.dirty_pages(f.fid),
                s.lockfree_reads,
                s.local_reads,
                s.remote_reads,
            );
        }
    }
    let (mut lockfree, mut local) = (0u64, 0u64);
    for cm in &cms {
        let s = cm.stats();
        lockfree += s.lockfree_reads;
        local += s.local_reads;
    }
    SweepPoint {
        clients,
        total_ops,
        wall_s: wall,
        ops_per_s: total_ops as f64 / wall,
        // Each client issues its ops serially, so the mean per-op
        // latency is wall time over ops-per-client, not total ops.
        mean_latency_us: wall * 1e6 / ops_per_client as f64,
        rpcs: nd.calls,
        sim_net_ms: nd.latency_us as f64 / 1000.0,
        ops_per_sim_net_s: total_ops as f64 * 1e6 / nd.latency_us.max(1) as f64,
        lockfree_reads: lockfree,
        local_reads: local,
        ok: !stalled && agree,
    }
}

fn main() {
    let args = parse_args();
    let p = pingpong();
    let sweep: Vec<_> = args.clients.iter().map(|&n| hotpath(n, args.ops)).collect();

    if args.json {
        let mut points = String::new();
        for (i, s) in sweep.iter().enumerate() {
            if i > 0 {
                points.push_str(", ");
            }
            points.push_str(&format!(
                "{{\"clients\": {}, \"total_ops\": {}, \"wall_s\": {:.4}, \
                 \"ops_per_s\": {:.1}, \"mean_latency_us\": {:.2}, \
                 \"rpcs\": {}, \"sim_net_ms\": {:.2}, \"ops_per_sim_net_s\": {:.1}, \
                 \"lockfree_reads\": {}, \"local_reads\": {}, \"ok\": {}}}",
                s.clients,
                s.total_ops,
                s.wall_s,
                s.ops_per_s,
                s.mean_latency_us,
                s.rpcs,
                s.sim_net_ms,
                s.ops_per_sim_net_s,
                s.lockfree_reads,
                s.local_reads,
                s.ok
            ));
        }
        println!(
            "{{\"bench\": \"t9_revocation_pingpong\", \"handoffs\": {}, \"rpcs\": {}, \
             \"rpcs_per_handoff\": {:.2}, \"sim_net_ms\": {:.2}, \
             \"net_us_per_handoff\": {:.1}, \"stale_reads\": {}, \"sweep\": [{}]}}",
            p.handoffs,
            p.rpcs,
            p.rpcs as f64 / p.handoffs as f64,
            p.sim_net_ms,
            p.sim_net_ms * 1000.0 / p.handoffs as f64,
            p.stale,
            points
        );
        return;
    }

    println!("T9: token revocation ping-pong (two clients alternating writes)\n");
    header(&["handoffs", "RPCs", "RPCs/handoff", "net us/handoff", "bytes", "stale reads"]);
    row(&[
        &p.handoffs,
        &p.rpcs,
        &f2(p.rpcs as f64 / p.handoffs as f64),
        &f2(p.sim_net_ms * 1000.0 / p.handoffs as f64),
        &p.bytes,
        &p.stale,
    ]);
    println!("\nPer-RPC-type breakdown:");
    for (label, count) in &p.by_label {
        println!("  {label:>14}: {count}");
    }

    println!("\nToken hot-path sweep (shared file, read-dominated, write every 64th op):\n");
    header(&["clients", "total ops", "RPCs", "net ms", "ops/net-s", "mean us/op", "lock-free", "ok"]);
    for s in &sweep {
        row(&[
            &s.clients,
            &s.total_ops,
            &s.rpcs,
            &f2(s.sim_net_ms),
            &f2(s.ops_per_sim_net_s),
            &f2(s.mean_latency_us),
            &s.lockfree_reads,
            &s.ok,
        ]);
    }
    println!("\nExpected shape (paper §5.5, §6.1): a constant small number of RPCs");
    println!("per handoff and zero stale reads; in the sweep, throughput should");
    println!("scale with clients while reads between revocation storms are served");
    println!("from the published token snapshot without taking a vnode lock.");
}
