//! T9 — §5.5: the write/read handoff between two clients, counting the
//! RPCs per handoff and verifying single-system semantics: a write is
//! visible to the other client as soon as the write call returns.
//!
//! `--clients A,B,...` adds a token hot-path sweep, now a scenario
//! definition over [`dfs_bench::scenario`]: N clients share one file
//! under a read-dominated mix with periodic writes, so every write
//! storms the token manager with revocations while the reads between
//! storms ride the client's lock-free snapshot path. The shared driver
//! owns the threads, seeding, and the cross-client agreement check;
//! this binary keeps only the two-client handoff microbench (which
//! needs per-handoff RPC accounting no aggregate driver provides).

use dfs_bench::emit::{arr, Obj};
use dfs_bench::scenario::{ClassSpec, OpClass, Phase, RunReport, Scenario, Topology};
use dfs_bench::{f2, header, row};
use dfs_types::VolumeId;
use decorum_dfs::Cell;

struct Args {
    json: bool,
    ops: u64,
    clients: Vec<u32>,
}

fn parse_args() -> Args {
    let mut a = Args { json: false, ops: 400, clients: vec![2, 8] };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => a.json = true,
            "--ops" => a.ops = it.next().and_then(|v| v.parse().ok()).expect("--ops N"),
            "--clients" => {
                let list = it.next().expect("--clients A,B,...");
                a.clients = list
                    .split(',')
                    .map(|s| s.trim().parse().expect("--clients takes integers"))
                    .collect();
            }
            other => panic!("unknown flag {other}"),
        }
    }
    a
}

struct Pingpong {
    handoffs: u64,
    rpcs: u64,
    bytes: u64,
    sim_net_ms: f64,
    stale: u64,
    by_label: Vec<(String, u64)>,
}

fn pingpong() -> Pingpong {
    let cell = Cell::builder().servers(1).build().unwrap();
    cell.create_volume(0, VolumeId(1), "v").unwrap();
    let a = cell.new_client();
    let b = cell.new_client();
    let root = a.root(VolumeId(1)).unwrap();
    let f = a.create(root, "pingpong", 0o666).unwrap();
    a.write(f.fid, 0, &0u64.to_le_bytes()).unwrap();

    const HANDOFFS: u64 = 100;
    let before = cell.net().stats();
    let mut violations = 0u64;
    for i in 1..=HANDOFFS {
        let (writer, reader) = if i % 2 == 0 { (&a, &b) } else { (&b, &a) };
        writer.write(f.fid, 0, &i.to_le_bytes()).unwrap();
        let seen = u64::from_le_bytes(reader.read(f.fid, 0, 8).unwrap().try_into().unwrap());
        if seen != i {
            violations += 1;
        }
    }
    let d = cell.net().stats().since(&before);
    let mut labels: Vec<_> = d.by_label.iter().map(|(l, c)| (l.to_string(), *c)).collect();
    labels.sort();
    Pingpong {
        handoffs: HANDOFFS,
        rpcs: d.calls,
        bytes: d.bytes,
        sim_net_ms: d.latency_us as f64 / 1000.0,
        stale: violations,
        by_label: labels,
    }
}

/// N clients on one shared file: read-dominated with a write roughly
/// every 64th draw, so token grants, revocation storms, and
/// snapshot-path reads all land on the hot path under real thread
/// contention. The Read class pulls half its draws from the shared
/// write set, so readers keep colliding with the writers' tokens.
fn hotpath(clients: u32, ops_per_client: u64) -> RunReport {
    Scenario::new(
        "t9_hotpath",
        9,
        Topology::new(1, clients, 1).latency_us(20),
        vec![Phase::new(
            "hot",
            ops_per_client,
            vec![
                ClassSpec::new(OpClass::Write, 1, 1).sharing(clients).fsync_every(16),
                ClassSpec::new(OpClass::Read, 63, 1).sharing(clients),
            ],
        )],
    )
    .run()
}

fn main() {
    let args = parse_args();
    let p = pingpong();
    let sweep: Vec<RunReport> = args.clients.iter().map(|&n| hotpath(n, args.ops)).collect();

    if args.json {
        let points = arr(sweep.iter().map(|r| {
            Obj::new()
                .field("clients", r.clients)
                .field("total_ops", r.total_ops)
                .field("rpcs", r.net_calls)
                .field("sim_net_ms", r.net_latency_us as f64 / 1000.0)
                .field(
                    "ops_per_sim_net_s",
                    r.total_ops as f64 * 1e6 / r.net_latency_us.max(1) as f64,
                )
                .field("lockfree_reads", r.client_stats.lockfree_reads)
                .field("local_reads", r.client_stats.local_reads)
                .field("revocations", r.client_stats.revocations)
                .field("ok", r.clean())
        }));
        let out = Obj::new()
            .field("bench", "t9_revocation_pingpong")
            .field("handoffs", p.handoffs)
            .field("rpcs", p.rpcs)
            .field("rpcs_per_handoff", p.rpcs as f64 / p.handoffs as f64)
            .field("sim_net_ms", p.sim_net_ms)
            .field("net_us_per_handoff", p.sim_net_ms * 1000.0 / p.handoffs as f64)
            .field("stale_reads", p.stale)
            .field_raw("sweep", &points)
            .render();
        println!("{out}");
        return;
    }

    println!("T9: token revocation ping-pong (two clients alternating writes)\n");
    header(&["handoffs", "RPCs", "RPCs/handoff", "net us/handoff", "bytes", "stale reads"]);
    row(&[
        &p.handoffs,
        &p.rpcs,
        &f2(p.rpcs as f64 / p.handoffs as f64),
        &f2(p.sim_net_ms * 1000.0 / p.handoffs as f64),
        &p.bytes,
        &p.stale,
    ]);
    println!("\nPer-RPC-type breakdown:");
    for (label, count) in &p.by_label {
        println!("  {label:>14}: {count}");
    }

    println!("\nToken hot-path sweep (shared file, read-dominated, write every ~64th op):\n");
    header(&[
        "clients",
        "total ops",
        "RPCs",
        "net ms",
        "ops/net-s",
        "lock-free",
        "revocations",
        "ok",
    ]);
    for r in &sweep {
        row(&[
            &r.clients,
            &r.total_ops,
            &r.net_calls,
            &f2(r.net_latency_us as f64 / 1000.0),
            &f2(r.total_ops as f64 * 1e6 / r.net_latency_us.max(1) as f64),
            &r.client_stats.lockfree_reads,
            &r.client_stats.revocations,
            &r.clean(),
        ]);
    }
    println!("\nExpected shape (paper §5.5, §6.1): a constant small number of RPCs");
    println!("per handoff and zero stale reads; in the sweep, throughput should");
    println!("scale with clients while reads between revocation storms are served");
    println!("from the published token snapshot without taking a vnode lock.");
}
