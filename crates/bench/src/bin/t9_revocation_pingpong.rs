//! T9 — §5.5: the write/read handoff between two clients, counting the
//! RPCs per handoff and verifying single-system semantics: a write is
//! visible to the other client as soon as the write call returns.

use dfs_bench::{f2, header, row};
use dfs_types::VolumeId;
use decorum_dfs::Cell;

fn main() {
    println!("T9: token revocation ping-pong (two clients alternating writes)\n");
    let cell = Cell::builder().servers(1).build().unwrap();
    cell.create_volume(0, VolumeId(1), "v").unwrap();
    let a = cell.new_client();
    let b = cell.new_client();
    let root = a.root(VolumeId(1)).unwrap();
    let f = a.create(root, "pingpong", 0o666).unwrap();
    a.write(f.fid, 0, &0u64.to_le_bytes()).unwrap();

    const HANDOFFS: u64 = 100;
    let before = cell.net().stats();
    let mut violations = 0u64;
    for i in 1..=HANDOFFS {
        let (writer, reader) = if i % 2 == 0 { (&a, &b) } else { (&b, &a) };
        writer.write(f.fid, 0, &i.to_le_bytes()).unwrap();
        let seen = u64::from_le_bytes(reader.read(f.fid, 0, 8).unwrap().try_into().unwrap());
        if seen != i {
            violations += 1;
        }
    }
    let d = cell.net().stats().since(&before);
    header(&["handoffs", "RPCs", "RPCs/handoff", "bytes", "stale reads"]);
    row(&[&HANDOFFS, &d.calls, &f2(d.calls as f64 / HANDOFFS as f64), &d.bytes, &violations]);
    println!("\nPer-RPC-type breakdown:");
    let mut labels: Vec<_> = d.by_label.iter().collect();
    labels.sort();
    for (label, count) in labels {
        println!("  {label:>14}: {count}");
    }
    println!("\nExpected shape (paper §5.5): a constant small number of RPCs per");
    println!("handoff (token grant + revocation + store-back + fetch), zero stale");
    println!("reads — the strongest consistency on the §5.4 spectrum.");
}
