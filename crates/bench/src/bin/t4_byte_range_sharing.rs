//! T4 — §5.4: "Callbacks cannot describe byte ranges of data. If a group
//! of users are accessing (and modifying) the same large file, even
//! though they may be using disjoint parts of it, the file will
//! frequently be shipped back and forth in its entirety."
//!
//! Two clients alternate writes in disjoint halves of a file, AFS-style
//! vs DFS byte-range tokens, sweeping the file size.

use dfs_baselines::{AfsClient, AfsServer};
use dfs_bench::emit::{arr, Obj};
use dfs_bench::{header, ratio, row};
use dfs_disk::{DiskConfig, SimDisk};
use dfs_episode::{Episode, FormatParams};
use dfs_rpc::Network;
use dfs_types::{ByteRange, ClientId, ServerId, SimClock, VolumeId};
use dfs_vfs::PhysicalFs;

const HANDOFFS: u64 = 20;

fn run_afs(file_bytes: u64) -> u64 {
    let clock = SimClock::new();
    let net = Network::new(clock.clone(), 500);
    let disk = SimDisk::new(DiskConfig::with_blocks(128 * 1024));
    let ep = Episode::format(disk, clock, FormatParams::default()).unwrap();
    ep.create_volume(VolumeId(1), "v").unwrap();
    AfsServer::start(&net, ServerId(1), ep.mount(VolumeId(1)).unwrap());
    let a = AfsClient::start(net.clone(), ClientId(1), ServerId(1));
    let b = AfsClient::start(net.clone(), ClientId(2), ServerId(1));
    let root = a.root(VolumeId(1)).unwrap();
    let f = a.create(root, "big", 0o666).unwrap();
    a.write(f.fid, 0, &vec![0u8; file_bytes as usize]).unwrap();
    a.close(f.fid).unwrap();
    let before = net.stats();
    for i in 0..HANDOFFS {
        a.write(f.fid, i * 64, &[1u8; 64]).unwrap();
        a.close(f.fid).unwrap();
        b.write(f.fid, file_bytes / 2 + i * 64, &[2u8; 64]).unwrap();
        b.close(f.fid).unwrap();
    }
    net.stats().since(&before).bytes
}

fn run_dfs(file_bytes: u64) -> u64 {
    let cell = dfs_core::Cell::builder().servers(1).disk_blocks(128 * 1024).build().unwrap();
    cell.create_volume(0, VolumeId(1), "v").unwrap();
    let a = cell.new_client();
    let b = cell.new_client();
    let root = a.root(VolumeId(1)).unwrap();
    let f = a.create(root, "big", 0o666).unwrap();
    a.write(f.fid, 0, &vec![0u8; file_bytes as usize]).unwrap();
    a.fsync(f.fid).unwrap();
    a.acquire_data_token(f.fid, ByteRange::new(0, file_bytes / 2), true).unwrap();
    b.acquire_data_token(f.fid, ByteRange::new(file_bytes / 2, file_bytes), true).unwrap();
    let before = cell.net().stats();
    for i in 0..HANDOFFS {
        a.write(f.fid, i * 64, &[1u8; 64]).unwrap();
        b.write(f.fid, file_bytes / 2 + i * 64, &[2u8; 64]).unwrap();
    }
    cell.net().stats().since(&before).bytes
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let sweep: Vec<(u64, u64, u64)> = [64u64, 256, 1024, 4096]
        .iter()
        .map(|&kib| (kib, run_afs(kib * 1024), run_dfs(kib * 1024)))
        .collect();

    if json {
        let rows = arr(sweep.iter().map(|&(kib, afs, dfs)| {
            Obj::new()
                .field("file_kib", kib)
                .field("afs_bytes", afs)
                .field("dfs_bytes", dfs)
                .field("afs_over_dfs", afs as f64 / dfs.max(1) as f64)
        }));
        let out = Obj::new()
            .field("bench", "t4_byte_range_sharing")
            .field("handoffs", HANDOFFS)
            .field_raw("sweep", &rows)
            .render();
        println!("{out}");
        return;
    }

    println!("T4: disjoint writers of one large file — bytes on the wire for");
    println!("    {HANDOFFS} alternating 64-byte writes per client\n");
    header(&["file KiB", "afs bytes", "dfs bytes", "afs/dfs"]);
    for &(kib, afs, dfs) in &sweep {
        row(&[&kib, &afs, &dfs, &ratio(afs as f64, dfs as f64)]);
    }
    println!("\nExpected shape (paper): AFS traffic grows with the FILE size (whole-file");
    println!("ping-pong); DFS traffic is flat (token messages only), so the ratio");
    println!("widens linearly with file size.");
}
