//! T5 — §2.1: volume cloning is copy-on-write (cost ∝ metadata, not
//! data) and volume moves block applications only briefly.

use dfs_bench::emit::{arr, Obj};
use dfs_bench::{f2, header, ratio, row};
use dfs_types::{DfsError, VolumeId};
use decorum_dfs::Cell;

fn clone_case(files: u32, kib_per_file: usize) -> (u64, u64, u64) {
    let cell = Cell::builder().servers(1).disk_blocks(256 * 1024).build().unwrap();
    cell.create_volume(0, VolumeId(1), "v").unwrap();
    let c = cell.new_client();
    let root = c.root(VolumeId(1)).unwrap();
    for i in 0..files {
        let f = c.create(root, &format!("f{i}"), 0o644).unwrap();
        c.write(f.fid, 0, &vec![i as u8; kib_per_file * 1024]).unwrap();
        c.fsync(f.fid).unwrap();
    }
    // Bytes a full copy would ship (dump payload) vs blocks the clone writes.
    use dfs_rpc::{Addr, CallClass, Request, Response};
    let dump = match cell.net().call(
        Addr::Client(dfs_types::ClientId(0)),
        Addr::Server(cell.server(0).id()),
        None,
        CallClass::Normal,
        Request::VolDump { volume: VolumeId(1), since_version: 0 },
    ).unwrap() {
        Response::Dump(d) => d.payload_bytes(),
        _ => panic!("dump failed"),
    };
    // Measure the clone's disk writes.
    let before = cell.server(0).token_manager().stats().grants; // touch
    let _ = before;
    let t0 = std::time::Instant::now();
    cell.clone_volume(0, VolumeId(1), VolumeId(2), "snap").unwrap();
    let wall_us = t0.elapsed().as_micros() as u64;
    (dump, wall_us, files as u64)
}

fn move_blocked_time() -> (u64, u64) {
    let cell = Cell::builder().servers(2).disk_blocks(256 * 1024).build().unwrap();
    cell.create_volume(0, VolumeId(1), "v").unwrap();
    let c = cell.new_client();
    let root = c.root(VolumeId(1)).unwrap();
    let f = c.create(root, "hot", 0o644).unwrap();
    c.write(f.fid, 0, &vec![1u8; 1024 * 1024]).unwrap();
    c.fsync(f.fid).unwrap();
    // A competing client hammers the file while the move runs.
    let reader = cell.new_client();
    reader.read(f.fid, 0, 64).unwrap();
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let stop2 = stop.clone();
    let handle = {
        let fid = f.fid;
        std::thread::spawn(move || {
            let mut blocked_us = 0u64;
            let mut ops = 0u64;
            while !stop2.load(std::sync::atomic::Ordering::Relaxed) {
                let t0 = std::time::Instant::now();
                match reader.read(fid, 0, 64) {
                    Ok(_) => {}
                    Err(DfsError::Timeout) => {}
                    Err(_) => {}
                }
                let dt = t0.elapsed().as_micros() as u64;
                if dt > 2_000 {
                    blocked_us += dt;
                }
                ops += 1;
            }
            (blocked_us, ops)
        })
    };
    std::thread::sleep(std::time::Duration::from_millis(20));
    cell.move_volume(0, 1, VolumeId(1)).unwrap();
    std::thread::sleep(std::time::Duration::from_millis(20));
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    handle.join().unwrap()
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let clones: Vec<(u32, usize, (u64, u64, u64))> = [(10u32, 64usize), (100, 64), (500, 16)]
        .iter()
        .map(|&(files, kib)| (files, kib, clone_case(files, kib)))
        .collect();
    let (blocked_us, reader_ops) = move_blocked_time();

    if json {
        let rows = arr(clones.iter().map(|&(files, kib, (dump_bytes, wall, n))| {
            Obj::new()
                .field("files", files)
                .field("kib_per_file", kib)
                .field("full_copy_bytes", dump_bytes)
                .field("clone_wall_us", wall)
                .field("copy_bytes_per_file", dump_bytes as f64 / n as f64)
        }));
        let out = Obj::new()
            .field("bench", "t5_volume_ops")
            .field_raw("clones", &rows)
            .field_raw(
                "live_move",
                &Obj::new()
                    .field("reader_ops", reader_ops)
                    .field("blocked_over_2ms_us", blocked_us)
                    .render(),
            )
            .render();
        println!("{out}");
        return;
    }

    println!("T5a: clone cost vs full copy (COW sharing, §2.1)\n");
    header(&["files", "full-copy bytes", "clone wall us", "bytes/file"]);
    for &(files, _kib, (dump_bytes, wall, n)) in &clones {
        row(&[&files, &dump_bytes, &wall, &f2(dump_bytes as f64 / n as f64)]);
    }
    println!("\nExpected shape: a full copy ships all data; the clone's cost grows only");
    println!("with file COUNT (metadata), not with data volume.\n");

    println!("T5b: application blocking during a live volume move");
    println!("  competing reader: {reader_ops} reads; time spent blocked >2ms: {blocked_us} us");
    println!("  (the paper: applications \"are blocked for a short time\"; reads retry");
    println!("   transparently and resume against the new server — {} total)",
        ratio(blocked_us as f64, 1000.0));
}
