//! Declarative scenario engine: one driver for every harness workload.
//!
//! A [`Scenario`] is data — topology, weighted workload mix, and an
//! event timeline — and [`Scenario::run`] is the single shared driver
//! that executes it: it builds the fleet, seeds per-client RNG streams,
//! runs the phases behind barriers, fires timeline events at op-count
//! offsets, samples time-series metrics, checks invariants (zero lost
//! updates, cross-client agreement, no torn page reads), and returns a
//! [`RunReport`] with a uniform JSON rendering (via [`crate::emit`]).
//! T9's hot-path sweep, T11's Andrew-style phases, T15's mid-run
//! migration, and T17's mixed-workload scaling run are all scenario
//! definitions over this module (EXPERIMENTS.md).
//!
//! # Determinism contract
//!
//! Every client's op stream is generated from its own RNG, seeded from
//! `(scenario.seed, client_index)` alone, and **all draws for an op
//! happen before the op executes** — outcomes (retries, redirects,
//! token ping-pong) never feed back into the stream. Two runs with the
//! same seed therefore produce the same op sequence ([`RunReport`]'s
//! `op_digest`), the same per-class op counts, and — when every write
//! is acknowledged — the same final file contents (`state_digest`).
//! RPC counts, disk time, and samples are *measured* quantities and
//! legitimately vary with thread scheduling; the report keeps the two
//! groups separate so the replay check (`t17_scenario`) can compare
//! the deterministic block byte for byte.
//!
//! # Timeline semantics
//!
//! Events are armed at **global op-count offsets**: the client thread
//! whose op crosses `at_op` fires the event synchronously and records
//! the exact op count it fired at. Events not reached by the end of
//! the run (offset past the total op budget) fire after the last
//! phase, before verification. Crash events need a topology with
//! spare servers (and a later restart) for the op counter to keep
//! advancing — the driver does not babysit a scenario that crashes
//! its only server.
//!
//! # Sharing and invariants
//!
//! Each op class owns a file set per *sharing group* (`sharing`
//! clients per group). Writers only ever write their own
//! `member_index` page-sized region of a shared file, so the final
//! content of every region is exactly the last acknowledged write —
//! which the invariant checker re-reads through a fresh client (lost
//! updates) and through every group member's own cache (cross-client
//! agreement). Read-class and scan-class sets are prefilled with
//! seed-derived payloads and verified on every read.

use crate::emit::Obj;
use dfs_client::{CacheManager, ClientStats, WritebackConfig, PAGE_SIZE};
use dfs_core::Cell;
use dfs_fleet::Fleet;
use dfs_rpc::FaultSchedule;
use dfs_types::{Fid, VolumeId};
use parking_lot::Mutex;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};

/// One weighted operation class.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OpClass {
    /// Page read (1-in-4 draws do a `getattr` instead — the §6.1
    /// lock-free status path). Reads draw from the class's own
    /// prefilled set and, when the phase also has a `Write` spec, from
    /// the write set half the time (coherent-read traffic).
    Read,
    /// Page write of the client's own region of a (possibly shared)
    /// file; `fsync_every` forces periodic durability.
    Write,
    /// Metadata churn: create / getattr / remove of per-client names in
    /// a per-group directory (shared directories exercise the
    /// directory-token ping-pong).
    MetadataChurn,
    /// Sequential whole-file read of a prefilled file, page by page,
    /// with content verification.
    StreamingScan,
}

impl OpClass {
    fn index(self) -> usize {
        match self {
            OpClass::Read => 0,
            OpClass::Write => 1,
            OpClass::MetadataChurn => 2,
            OpClass::StreamingScan => 3,
        }
    }

    /// Class names in `index` order (JSON field order).
    pub const NAMES: [&'static str; 4] = ["read", "write", "metadata_churn", "streaming_scan"];
}

/// One op class in a phase's mix.
#[derive(Clone, Copy, Debug)]
pub struct ClassSpec {
    /// The op class.
    pub class: OpClass,
    /// Relative draw weight within the phase.
    pub weight: u32,
    /// Files per sharing group (for `MetadataChurn`: distinct names
    /// each client cycles through).
    pub files: u32,
    /// Clients per sharing group; 1 = private files. The first phase
    /// mentioning a class fixes its `files`/`sharing` — file sets are
    /// global across phases.
    pub sharing: u32,
    /// For `Write`: fsync after every Nth successful write (0 = never).
    pub fsync_every: u32,
}

impl ClassSpec {
    /// A spec with weight `weight`, `files` files, no sharing, no fsync.
    pub fn new(class: OpClass, weight: u32, files: u32) -> ClassSpec {
        ClassSpec { class, weight, files: files.max(1), sharing: 1, fsync_every: 0 }
    }

    /// Sets the sharing degree (clients per group).
    pub fn sharing(mut self, n: u32) -> Self {
        self.sharing = n.max(1);
        self
    }

    /// Sets the write-fsync cadence.
    pub fn fsync_every(mut self, n: u32) -> Self {
        self.fsync_every = n;
        self
    }
}

/// Cluster shape for a scenario. `servers == 1` is the single-cell
/// case; everything still runs through [`Fleet`] so migration events
/// work uniformly.
#[derive(Clone, Copy, Debug)]
pub struct Topology {
    /// File servers.
    pub servers: u32,
    /// Client cache managers (one worker thread each).
    pub clients: u32,
    /// Volumes, placed round-robin across servers.
    pub volumes: u64,
    /// Simulated per-call network latency (µs).
    pub latency_us: u64,
    /// Per-server disk size in blocks.
    pub disk_blocks: u32,
    /// Run each client's background flusher (write-behind daemon).
    pub flusher: bool,
}

impl Topology {
    /// `servers × clients` over `volumes` volumes with library defaults.
    pub fn new(servers: u32, clients: u32, volumes: u64) -> Topology {
        Topology {
            servers: servers.max(1),
            clients: clients.max(1),
            volumes: volumes.max(1),
            latency_us: 200,
            disk_blocks: 32 * 1024,
            flusher: true,
        }
    }

    /// Overrides the simulated network latency.
    pub fn latency_us(mut self, us: u64) -> Self {
        self.latency_us = us;
        self
    }

    /// Overrides the per-server disk size.
    pub fn disk_blocks(mut self, blocks: u32) -> Self {
        self.disk_blocks = blocks;
        self
    }

    /// Disables the background flusher (synchronous store-back only).
    pub fn no_flusher(mut self) -> Self {
        self.flusher = false;
        self
    }
}

/// A timeline event, armed at a global op-count offset.
#[derive(Clone, Debug)]
pub enum Event {
    /// Crash the server in cell slot `0`-based `slot` (volatile state
    /// lost, callers see `Unreachable` until restart).
    CrashServer(usize),
    /// Restart a crashed slot with a post-restart grace window.
    RestartServer {
        /// Cell slot to restart.
        slot: usize,
        /// Grace-window length (µs of real time).
        grace_us: u64,
    },
    /// Live-migrate a volume to a destination slot under traffic.
    MoveVolume {
        /// Volume to move.
        volume: u64,
        /// Destination cell slot.
        dst_slot: usize,
    },
    /// Append the schedule's rules to the network fault plane
    /// ([`dfs_rpc::Network::add_fault_rules`] — already-armed rules
    /// keep their counters).
    ArmFaults(FaultSchedule),
    /// Disarm the fault plane.
    ClearFaults,
}

impl Event {
    fn name(&self) -> &'static str {
        match self {
            Event::CrashServer(_) => "crash_server",
            Event::RestartServer { .. } => "restart_server",
            Event::MoveVolume { .. } => "move_volume",
            Event::ArmFaults(_) => "arm_faults",
            Event::ClearFaults => "clear_faults",
        }
    }
}

/// One phase: every client issues `ops_per_client` weighted draws from
/// `mix`, then waits on a barrier before the next phase starts.
#[derive(Clone, Debug)]
pub struct Phase {
    /// Phase name (reported in JSON).
    pub name: &'static str,
    /// Ops each client issues in this phase.
    pub ops_per_client: u64,
    /// Weighted op classes.
    pub mix: Vec<ClassSpec>,
}

impl Phase {
    /// A phase issuing `ops_per_client` draws from `mix`.
    pub fn new(name: &'static str, ops_per_client: u64, mix: Vec<ClassSpec>) -> Phase {
        Phase { name, ops_per_client, mix }
    }
}

/// A complete declarative scenario.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Scenario name (reported in JSON).
    pub name: &'static str,
    /// Master seed; fixes every client's op stream.
    pub seed: u64,
    /// Cluster shape.
    pub topology: Topology,
    /// Phases, run in order behind barriers.
    pub phases: Vec<Phase>,
    /// Events armed at global op-count offsets (sorted by the driver).
    pub timeline: Vec<(u64, Event)>,
    /// Ops between time-series samples (0 = no sampling).
    pub sample_every: u64,
}

impl Scenario {
    /// A scenario with no timeline and no sampling.
    pub fn new(name: &'static str, seed: u64, topology: Topology, phases: Vec<Phase>) -> Scenario {
        Scenario { name, seed, topology, phases, timeline: Vec::new(), sample_every: 0 }
    }

    /// Arms `event` at global op-count `at_op`.
    pub fn at(mut self, at_op: u64, event: Event) -> Self {
        self.timeline.push((at_op, event));
        self
    }

    /// Enables time-series sampling every `n` ops.
    pub fn sample_every(mut self, n: u64) -> Self {
        self.sample_every = n;
        self
    }

    /// Executes the scenario. See the module docs for the contract.
    pub fn run(&self) -> RunReport {
        Driver::new(self).run()
    }
}

/// One time-series sample (cumulative counters at `at_op`).
#[derive(Clone, Debug)]
pub struct Sample {
    /// Global op count when the sample was taken.
    pub at_op: u64,
    /// Simulated time (µs).
    pub sim_us: u64,
    /// Network calls so far.
    pub net_calls: u64,
    /// §6.1 lock-free read/getattr hits so far (all clients).
    pub lockfree_reads: u64,
    /// Cache-local reads so far.
    pub local_reads: u64,
    /// Remote (RPC) reads so far.
    pub remote_reads: u64,
    /// Bounded-stale replica reads so far.
    pub stale_reads: u64,
    /// Revocations received so far.
    pub revocations: u64,
}

/// A fired timeline event.
#[derive(Clone, Debug)]
pub struct FiredEvent {
    /// Event name (`crash_server`, `move_volume`, …).
    pub event: &'static str,
    /// The armed offset.
    pub at_op: u64,
    /// The op count the driver actually fired it at (`>= at_op`; equal
    /// in the common case — the crossing thread fires synchronously).
    pub fired_at: u64,
    /// Whether the event's action succeeded.
    pub ok: bool,
}

/// Everything a run produces. Fields under "deterministic" are a pure
/// function of the scenario (see module docs); the rest are measured.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Scenario name.
    pub name: &'static str,
    /// Seed the run used.
    pub seed: u64,
    /// Servers in the topology.
    pub servers: u32,
    /// Clients in the topology.
    pub clients: u32,
    /// Volumes in the topology.
    pub volumes: u64,
    /// Total ops issued (= clients × Σ ops_per_client).
    pub total_ops: u64,
    /// Ops per class, [`OpClass::NAMES`] order.
    pub class_ops: [u64; 4],
    /// FNV-1a digest of every client's op stream, in client order.
    pub op_digest: u64,
    /// FNV-1a digest of the final acknowledged region contents.
    pub state_digest: u64,
    /// Ops whose execution returned an error (after client retries).
    pub failed_ops: u64,
    /// Invariant: regions whose fresh-client read-back did not match
    /// the last acknowledged write.
    pub lost_updates: u64,
    /// Invariant: shared files whose content differed between group
    /// members' caches (or a fresh client) after the run.
    pub agreement_failures: u64,
    /// Invariant: mid-run reads that saw a torn page (neither zeros
    /// nor one complete tagged payload).
    pub torn_reads: u64,
    /// Invariant: prefilled-set reads/scans whose content did not match
    /// the seed-derived payload.
    pub scan_mismatches: u64,
    /// Regions whose last write failed — excluded from the lost-update
    /// check (the write may or may not have landed; at-least-once).
    pub ambiguous_regions: u64,
    /// Timeline events, in firing order.
    pub events: Vec<FiredEvent>,
    /// Time-series samples (empty when `sample_every == 0`).
    pub samples: Vec<Sample>,
    /// Merged client counters.
    pub client_stats: ClientStats,
    /// Fleet-wide server counters.
    pub server_ops: u64,
    /// Server-side WrongServer redirects.
    pub server_redirects: u64,
    /// Cross-server forwards.
    pub server_forwards: u64,
    /// Volume moves completed server-side.
    pub server_moves: u64,
    /// Network calls for the whole run.
    pub net_calls: u64,
    /// Network bytes for the whole run.
    pub net_bytes: u64,
    /// Simulated network time charged (latency × calls, µs) — the
    /// deterministic cost currency for network-bound workloads.
    pub net_latency_us: u64,
    /// Faults injected by the fault plane.
    pub faults_injected: u64,
    /// Busiest disk's simulated time (µs) — the fleet critical path.
    pub disk_busy_us: u64,
    /// Simulated clock at the end of the run (µs).
    pub sim_us: u64,
}

impl RunReport {
    /// `true` when every invariant held and nothing was ambiguous.
    /// This is the fault-free bar: a crash window legitimately produces
    /// `failed_ops` (client retry budgets expire while the server is
    /// down) and `ambiguous_regions`; use [`RunReport::coherent`] for
    /// runs whose timeline kills servers.
    pub fn clean(&self) -> bool {
        self.failed_ops == 0 && self.ambiguous_regions == 0 && self.coherent()
    }

    /// `true` when the coherence invariants held: no acknowledged write
    /// was lost, group members agreed on shared content, no torn pages,
    /// no prefilled-content corruption. Failed ops and ambiguous
    /// regions (availability effects) are not counted against this.
    pub fn coherent(&self) -> bool {
        self.lost_updates == 0
            && self.agreement_failures == 0
            && self.torn_reads == 0
            && self.scan_mismatches == 0
    }

    /// Aggregate throughput: ops per second of critical-path disk time.
    pub fn ops_per_disk_sec(&self) -> f64 {
        self.total_ops as f64 * 1e6 / self.disk_busy_us.max(1) as f64
    }

    /// Lock-free share of token-hit reads/getattrs.
    pub fn lockfree_hit_rate(&self) -> f64 {
        let local = self.client_stats.local_reads.max(1);
        self.client_stats.lockfree_reads as f64 / local as f64
    }

    /// The deterministic block: byte-identical across same-seed runs,
    /// including runs whose timeline crashes servers. Only fields that
    /// are a pure function of the scenario spec belong here — in
    /// particular `state_digest` does NOT (under a crash window, which
    /// writes get acknowledged depends on thread scheduling).
    pub fn deterministic_json(&self) -> String {
        Obj::new()
            .field("seed", self.seed)
            .field("total_ops", self.total_ops)
            .field_arr("class_ops", self.class_ops.iter())
            .field("op_digest", format!("{:016x}", self.op_digest))
            .render()
    }

    /// The invariant block. `state_digest` lives here (not in the
    /// deterministic block): it covers exactly the acknowledged
    /// regions, so it is replayable for fault-free timelines but
    /// scheduling-dependent when a crash window fails writes.
    pub fn invariants_json(&self) -> String {
        Obj::new()
            .field("state_digest", format!("{:016x}", self.state_digest))
            .field("failed_ops", self.failed_ops)
            .field("lost_updates", self.lost_updates)
            .field("agreement_failures", self.agreement_failures)
            .field("torn_reads", self.torn_reads)
            .field("scan_mismatches", self.scan_mismatches)
            .field("ambiguous_regions", self.ambiguous_regions)
            .field("coherent", self.coherent())
            .field("clean", self.clean())
            .render()
    }

    /// The full uniform report (deterministic + invariants + measured
    /// + events + samples), as one JSON object.
    pub fn to_json(&self) -> String {
        let s = &self.client_stats;
        let measured = Obj::new()
            .field("net_calls", self.net_calls)
            .field("net_bytes", self.net_bytes)
            .field("sim_net_ms", self.net_latency_us as f64 / 1000.0)
            .field("rpcs_per_op", self.net_calls as f64 / self.total_ops.max(1) as f64)
            .field("lockfree_reads", s.lockfree_reads)
            .field("local_reads", s.local_reads)
            .field("remote_reads", s.remote_reads)
            .field("lockfree_hit_rate", self.lockfree_hit_rate())
            .field("stale_reads", s.stale_reads)
            .field("max_stale_us", s.max_stale_us)
            .field("revocations", s.revocations)
            .field("transport_retries", s.transport_retries)
            .field("grace_waits", s.grace_waits)
            .field("recoveries", s.recoveries)
            .field("client_redirects", s.wrong_server_redirects)
            .field("server_ops", self.server_ops)
            .field("server_redirects", self.server_redirects)
            .field("server_forwards", self.server_forwards)
            .field("server_moves", self.server_moves)
            .field("faults_injected", self.faults_injected)
            .field("disk_busy_ms", self.disk_busy_us as f64 / 1000.0)
            .field("ops_per_disk_sec", self.ops_per_disk_sec())
            .field("sim_ms", self.sim_us as f64 / 1000.0);
        let events = crate::emit::arr(self.events.iter().map(|e| {
            Obj::new()
                .field("event", e.event)
                .field("at_op", e.at_op)
                .field("fired_at", e.fired_at)
                .field("ok", e.ok)
        }));
        let samples = crate::emit::arr(self.samples.iter().map(|p| {
            Obj::new()
                .field("at_op", p.at_op)
                .field("sim_us", p.sim_us)
                .field("net_calls", p.net_calls)
                .field("lockfree_reads", p.lockfree_reads)
                .field("local_reads", p.local_reads)
                .field("remote_reads", p.remote_reads)
                .field("stale_reads", p.stale_reads)
                .field("revocations", p.revocations)
        }));
        Obj::new()
            .field("scenario", self.name)
            .field("servers", self.servers)
            .field("clients", self.clients)
            .field("volumes", self.volumes)
            .field_raw("deterministic", &self.deterministic_json())
            .field_raw("invariants", &self.invariants_json())
            .field_raw("measured", &measured.render())
            .field_raw("events", &events)
            .field_raw("samples", &samples)
            .render()
    }
}

// ---------------------------------------------------------------------
// Seeding and payloads
// ---------------------------------------------------------------------

/// SplitMix64 step — stream derivation from the master seed.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a 64 accumulator.
#[derive(Clone, Copy)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
}

/// A page-sized payload: the tag in the first 8 bytes, then a SplitMix
/// stream keyed by the tag. Any reader can recover the tag and verify
/// the whole page — the torn-read check.
fn payload(tag: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(PAGE_SIZE);
    out.extend_from_slice(&tag.to_le_bytes());
    let mut x = tag;
    while out.len() < PAGE_SIZE {
        x = splitmix(x);
        out.extend_from_slice(&x.to_le_bytes());
    }
    out.truncate(PAGE_SIZE);
    out
}

/// Classifies a page read from a write-set region: untouched zeros, a
/// complete tagged payload, or torn.
fn classify_page(data: &[u8]) -> PageKind {
    if data.iter().all(|&b| b == 0) {
        return PageKind::Zeros;
    }
    if data.len() == PAGE_SIZE {
        let mut tag = [0u8; 8];
        tag.copy_from_slice(&data[..8]);
        let tag = u64::from_le_bytes(tag);
        if payload(tag) == data {
            return PageKind::Tagged(tag);
        }
    }
    PageKind::Torn
}

#[derive(Debug)]
enum PageKind {
    Zeros,
    Tagged(u64),
    Torn,
}

/// The prefill tag for region `region` of file `file` in set `set` —
/// a pure function of the scenario seed.
fn prefill_tag(seed: u64, set: usize, file: u32, region: u32) -> u64 {
    splitmix(
        seed ^ splitmix(set as u64 ^ (u64::from(file) << 20) ^ (u64::from(region) << 44) ^ 0x5eed),
    )
}

// ---------------------------------------------------------------------
// Driver internals
// ---------------------------------------------------------------------

/// One file set: the files a sharing group of one class works on.
struct FileSet {
    files: Vec<Fid>,
    /// Regions per file (= sharing degree).
    regions: u32,
    /// Prefilled with seed-derived payloads (read/scan sets).
    prefilled: bool,
}

/// A class spec resolved for one client in one phase.
struct ResolvedSpec {
    class: OpClass,
    weight: u32,
    fsync_every: u32,
    /// Index into `RunCtx::sets` (Read/Write/StreamingScan).
    set: usize,
    /// This client's member index within its sharing group.
    member: u32,
    /// The phase's write set, for coherent Read traffic.
    write_set: Option<usize>,
    /// Churn directory and name budget (MetadataChurn).
    churn_dir: Option<Fid>,
    names: u32,
}

/// Timeline/sampling control, behind one mutex; `trigger` caches the
/// next interesting op count so the per-op fast path is one atomic
/// load. Events fire *under* this mutex: firing order must match the
/// declared order (a restart must never overtake its crash), and only
/// client worker threads between ops ever take it — no RPC handler or
/// revocation path does, so the lock cannot join a reply-wait cycle.
struct Control {
    next_event: usize,
    next_sample: u64,
    fired: Vec<FiredEvent>,
    samples: Vec<Sample>,
}

struct RunCtx {
    fleet: Fleet,
    seed: u64,
    clients: Vec<Arc<CacheManager>>,
    sets: Vec<FileSet>,
    timeline: Vec<(u64, Event)>,
    sample_every: u64,
    ops: AtomicU64,
    trigger: AtomicU64,
    ctl: Mutex<Control>,
}

impl RunCtx {
    /// Fires due events / takes due samples at op count `n`, then
    /// recomputes the trigger. `n == u64::MAX` is the post-run sweep:
    /// it fires every event still pending, but samples (and the
    /// recorded fire point) are clamped to the ops actually issued —
    /// sampling "up to u64::MAX" would loop forever.
    // dfs-lint: allow(guard-across-rpc) — timeline events (crash,
    // restart, move, fault arming) send RPCs while `ctl` is held;
    // see the `Control` docs for why this cannot deadlock.
    fn service(&self, n: u64) {
        let issued = self.ops.load(Ordering::SeqCst);
        let mut ctl = self.ctl.lock();
        while ctl.next_event < self.timeline.len() && self.timeline[ctl.next_event].0 <= n {
            let (at_op, event) = &self.timeline[ctl.next_event];
            let ok = self.fire(event);
            let fired =
                FiredEvent { event: event.name(), at_op: *at_op, fired_at: n.min(issued), ok };
            ctl.next_event += 1;
            ctl.fired.push(fired);
        }
        while self.sample_every > 0 && ctl.next_sample <= n.min(issued) {
            let at = ctl.next_sample;
            let sample = self.take_sample(at);
            ctl.next_sample += self.sample_every;
            ctl.samples.push(sample);
        }
        let next_ev = self.timeline.get(ctl.next_event).map_or(u64::MAX, |(at, _)| *at);
        let next_sm = if self.sample_every > 0 { ctl.next_sample } else { u64::MAX };
        self.trigger.store(next_ev.min(next_sm), Ordering::SeqCst);
    }

    fn fire(&self, event: &Event) -> bool {
        let cell = self.fleet.cell();
        match event {
            Event::CrashServer(slot) => {
                if *slot < cell.server_count() {
                    cell.crash_server(*slot);
                    true
                } else {
                    false
                }
            }
            Event::RestartServer { slot, grace_us } => {
                *slot < cell.server_count() && cell.restart_server(*slot, *grace_us).is_ok()
            }
            Event::MoveVolume { volume, dst_slot } => {
                self.fleet.move_volume(VolumeId(*volume), *dst_slot).is_ok()
            }
            Event::ArmFaults(schedule) => {
                cell.net().add_fault_rules(schedule.clone());
                true
            }
            Event::ClearFaults => {
                cell.net().clear_faults();
                true
            }
        }
    }

    fn take_sample(&self, at_op: u64) -> Sample {
        let mut merged = ClientStats::default();
        for c in &self.clients {
            merged.merge(&c.stats());
        }
        let net = self.fleet.cell().net().stats();
        Sample {
            at_op,
            sim_us: self.fleet.cell().clock().now().0,
            net_calls: net.calls,
            lockfree_reads: merged.lockfree_reads,
            local_reads: merged.local_reads,
            remote_reads: merged.remote_reads,
            stale_reads: merged.stale_reads,
            revocations: merged.revocations,
        }
    }
}

/// What one client thread brings home.
#[derive(Default)]
struct ClientOutcome {
    digest: u64,
    class_ops: [u64; 4],
    failed_ops: u64,
    torn_reads: u64,
    scan_mismatches: u64,
    /// (set, file, region) → (last tag written, last attempt acked).
    regions: HashMap<(usize, u32, u32), (u64, bool)>,
}

struct Driver<'a> {
    scenario: &'a Scenario,
}

impl<'a> Driver<'a> {
    fn new(scenario: &'a Scenario) -> Driver<'a> {
        Driver { scenario }
    }

    fn run(self) -> RunReport {
        let sc = self.scenario;
        let topo = &sc.topology;

        // -- Topology ---------------------------------------------------
        let cell = Cell::builder()
            .servers(topo.servers)
            .latency_us(topo.latency_us)
            .disk_blocks(topo.disk_blocks)
            .build()
            .expect("scenario cell");
        let fleet = Fleet::new(cell);
        for v in 1..=topo.volumes {
            fleet.create_volume(VolumeId(v), &format!("vol{v}")).expect("scenario volume");
        }

        // -- File sets (first phase mentioning a class fixes its shape) -
        // set_key[(class, group)] → index into sets; specs resolved per
        // phase re-use them.
        let setup = fleet.cell().new_client_writeback(WritebackConfig {
            flusher: false,
            ..WritebackConfig::default()
        });
        let mut sets: Vec<FileSet> = Vec::new();
        let mut set_key: HashMap<(usize, u32), usize> = HashMap::new();
        let mut churn_dirs: HashMap<u32, Fid> = HashMap::new();
        let mut class_shape: HashMap<usize, (u32, u32)> = HashMap::new(); // class → (files, sharing)
        for phase in &sc.phases {
            for spec in &phase.mix {
                class_shape.entry(spec.class.index()).or_insert((spec.files, spec.sharing));
            }
        }
        let groups_of = |sharing: u32| topo.clients.div_ceil(sharing.max(1));
        for (&class, &(files, sharing)) in {
            let mut keys: Vec<_> = class_shape.iter().collect();
            keys.sort();
            keys
        } {
            for group in 0..groups_of(sharing) {
                let vol = VolumeId((class as u64 * 31 + u64::from(group)) % topo.volumes + 1);
                let root = setup.root(vol).expect("volume root");
                if class == OpClass::MetadataChurn.index() {
                    let dir = setup
                        .mkdir(root, &format!("churn_g{group}"), 0o755)
                        .expect("churn dir")
                        .fid;
                    churn_dirs.insert(group, dir);
                    continue;
                }
                let dir = setup
                    .mkdir(root, &format!("c{class}_g{group}"), 0o755)
                    .expect("set dir")
                    .fid;
                let prefilled = class != OpClass::Write.index();
                let set_idx = sets.len();
                let mut fids = Vec::with_capacity(files as usize);
                for f in 0..files {
                    let fid = setup.create(dir, &format!("f{f}"), 0o644).expect("set file").fid;
                    for region in 0..sharing {
                        let data = if prefilled {
                            payload(prefill_tag(sc.seed, set_idx, f, region))
                        } else {
                            vec![0u8; PAGE_SIZE]
                        };
                        setup
                            .write(fid, u64::from(region) * PAGE_SIZE as u64, &data)
                            .expect("prefill");
                    }
                    fids.push(fid);
                }
                sets.push(FileSet { files: fids, regions: sharing, prefilled });
                set_key.insert((class, group), set_idx);
            }
        }
        setup.store_back_all().expect("prefill store-back");

        // -- Clients and per-phase resolved specs -----------------------
        let clients: Vec<Arc<CacheManager>> = (0..topo.clients)
            .map(|_| {
                if topo.flusher {
                    fleet.cell().new_client()
                } else {
                    fleet.cell().new_client_writeback(WritebackConfig {
                        flusher: false,
                        ..WritebackConfig::default()
                    })
                }
            })
            .collect();

        let resolve = |client: u32, phase: &Phase| -> Vec<ResolvedSpec> {
            let write_set = phase
                .mix
                .iter()
                .find(|s| s.class == OpClass::Write)
                .map(|_| {
                    let (_, sharing) = class_shape[&OpClass::Write.index()];
                    set_key[&(OpClass::Write.index(), client / sharing)]
                });
            phase
                .mix
                .iter()
                .map(|spec| {
                    let class = spec.class.index();
                    let (_, sharing) = class_shape[&class];
                    let group = client / sharing;
                    let member = client % sharing;
                    let (set, churn_dir) = if spec.class == OpClass::MetadataChurn {
                        (usize::MAX, Some(churn_dirs[&group]))
                    } else {
                        (set_key[&(class, group)], None)
                    };
                    ResolvedSpec {
                        class: spec.class,
                        weight: spec.weight.max(1),
                        fsync_every: spec.fsync_every,
                        set,
                        member,
                        write_set: if spec.class == OpClass::Read { write_set } else { None },
                        churn_dir,
                        names: spec.files.max(1),
                    }
                })
                .collect()
        };

        let timeline = {
            let mut t = sc.timeline.clone();
            t.sort_by_key(|(at, _)| *at);
            t
        };
        let first_trigger = {
            let ev = timeline.first().map_or(u64::MAX, |(at, _)| *at);
            let sm = if sc.sample_every > 0 { sc.sample_every } else { u64::MAX };
            ev.min(sm)
        };
        let ctx = Arc::new(RunCtx {
            fleet,
            seed: sc.seed,
            clients,
            sets,
            timeline,
            sample_every: sc.sample_every,
            ops: AtomicU64::new(0),
            trigger: AtomicU64::new(first_trigger),
            ctl: Mutex::new(Control {
                next_event: 0,
                next_sample: if sc.sample_every > 0 { sc.sample_every } else { u64::MAX },
                fired: Vec::new(),
                samples: Vec::new(),
            }),
        });

        // -- Phases -----------------------------------------------------
        let barrier = Arc::new(Barrier::new(topo.clients as usize));
        let outcomes: Vec<ClientOutcome> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..topo.clients)
                .map(|i| {
                    let ctx = Arc::clone(&ctx);
                    let barrier = Arc::clone(&barrier);
                    let phases = &sc.phases;
                    let seed = sc.seed;
                    let resolve = &resolve;
                    s.spawn(move || {
                        let mut rng = StdRng::seed_from_u64(splitmix(seed ^ (u64::from(i) << 1)));
                        let mut out = ClientOutcome::default();
                        let mut digest = Fnv::new();
                        let client = Arc::clone(&ctx.clients[i as usize]);
                        for (pi, phase) in phases.iter().enumerate() {
                            let specs = resolve(i, phase);
                            let total_w: u32 = specs.iter().map(|s| s.weight).sum();
                            let mut writes_since_fsync = 0u32;
                            for op in 0..phase.ops_per_client {
                                digest.u64(pi as u64);
                                digest.u64(op);
                                let spec = {
                                    let mut r = (rng.gen::<u64>() % u64::from(total_w)) as u32;
                                    digest.u64(u64::from(r));
                                    specs
                                        .iter()
                                        .find(|s| {
                                            if r < s.weight {
                                                true
                                            } else {
                                                r -= s.weight;
                                                false
                                            }
                                        })
                                        .expect("weighted draw in range")
                                };
                                out.class_ops[spec.class.index()] += 1;
                                let ok = Self::one_op(
                                    &ctx,
                                    &client,
                                    spec,
                                    &mut rng,
                                    &mut digest,
                                    &mut writes_since_fsync,
                                    &mut out,
                                );
                                if !ok {
                                    out.failed_ops += 1;
                                }
                                let n = ctx.ops.fetch_add(1, Ordering::SeqCst) + 1;
                                if n >= ctx.trigger.load(Ordering::SeqCst) {
                                    ctx.service(n);
                                }
                            }
                            barrier.wait();
                        }
                        let _ = client.store_back_all();
                        out.digest = digest.0;
                        out
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("client thread")).collect()
        });

        // Fire anything the op counter never reached (offsets past the
        // op budget), so declared events always run.
        let total_ops = ctx.ops.load(Ordering::SeqCst);
        ctx.service(u64::MAX);

        // A restarted server refuses brand-new hosts while its
        // token-reestablishment grace window is open (by design —
        // tests/recovery.rs pins it). Verification reads through a
        // fresh client, so step simulated time past every open window
        // first; each deadline is finite, so this terminates.
        for s in 0..ctx.fleet.server_count() {
            while ctx.fleet.cell().server(s).in_grace() {
                ctx.fleet.cell().clock().advance_millis(10);
            }
        }

        // -- Invariants -------------------------------------------------
        let fresh = ctx.fleet.cell().new_client_writeback(WritebackConfig {
            flusher: false,
            ..WritebackConfig::default()
        });
        let mut lost_updates = 0u64;
        let mut ambiguous_regions = 0u64;
        let mut state = Fnv::new();
        for out in &outcomes {
            let mut keys: Vec<_> = out.regions.keys().copied().collect();
            keys.sort_unstable();
            for key in keys {
                let (set, file, region) = key;
                let (tag, acked) = out.regions[&key];
                if !acked {
                    ambiguous_regions += 1;
                    continue;
                }
                state.u64(set as u64);
                state.u64(u64::from(file));
                state.u64(u64::from(region));
                state.u64(tag);
                let fid = ctx.sets[set].files[file as usize];
                let good = fresh
                    .read(fid, u64::from(region) * PAGE_SIZE as u64, PAGE_SIZE)
                    .map(|d| d == payload(tag))
                    .unwrap_or(false);
                if !good {
                    lost_updates += 1;
                }
            }
        }

        // Cross-client agreement: every member of a sharing group (and
        // the fresh client) must see identical shared-file bytes.
        let mut agreement_failures = 0u64;
        for (&(class, group), &set_idx) in &set_key {
            let set = &ctx.sets[set_idx];
            if set.regions <= 1 {
                continue;
            }
            let sharing = class_shape[&class].1;
            let lo = group * sharing;
            let hi = (lo + sharing).min(topo.clients);
            for &fid in &set.files {
                let len = set.regions as usize * PAGE_SIZE;
                let reference = fresh.read(fid, 0, len).ok();
                for member in lo..hi {
                    let got = ctx.clients[member as usize].read(fid, 0, len).ok();
                    if got != reference {
                        agreement_failures += 1;
                    }
                }
            }
        }

        // -- Metrics ----------------------------------------------------
        let mut client_stats = ClientStats::default();
        for c in &ctx.clients {
            client_stats.merge(&c.stats());
        }
        let server = ctx.fleet.aggregate_server_stats();
        let net = ctx.fleet.cell().net().stats();
        let mut op_digest = Fnv::new();
        let mut class_ops = [0u64; 4];
        let mut failed_ops = 0;
        let mut torn_reads = 0;
        let mut scan_mismatches = 0;
        for out in &outcomes {
            op_digest.u64(out.digest);
            for (i, n) in out.class_ops.iter().enumerate() {
                class_ops[i] += n;
            }
            failed_ops += out.failed_ops;
            torn_reads += out.torn_reads;
            scan_mismatches += out.scan_mismatches;
        }
        let (events, samples) = {
            let ctl = ctx.ctl.lock();
            (ctl.fired.clone(), ctl.samples.clone())
        };

        RunReport {
            name: sc.name,
            seed: sc.seed,
            servers: topo.servers,
            clients: topo.clients,
            volumes: topo.volumes,
            total_ops,
            class_ops,
            op_digest: op_digest.0,
            state_digest: state.0,
            failed_ops,
            lost_updates,
            agreement_failures,
            torn_reads,
            scan_mismatches,
            ambiguous_regions,
            events,
            samples,
            client_stats,
            server_ops: server.ops,
            server_redirects: server.wrong_server_redirects,
            server_forwards: server.forwards,
            server_moves: server.moves,
            net_calls: net.calls,
            net_bytes: net.bytes,
            net_latency_us: net.latency_us,
            faults_injected: ctx.fleet.cell().net().faults_injected(),
            disk_busy_us: ctx.fleet.disk_critical_path_us(),
            sim_us: ctx.fleet.cell().clock().now().0,
        }
    }

    /// Executes one drawn op. All RNG draws happen before any I/O.
    #[allow(clippy::too_many_arguments)]
    fn one_op(
        ctx: &RunCtx,
        client: &CacheManager,
        spec: &ResolvedSpec,
        rng: &mut StdRng,
        digest: &mut Fnv,
        writes_since_fsync: &mut u32,
        out: &mut ClientOutcome,
    ) -> bool {
        match spec.class {
            OpClass::Write => {
                let set = &ctx.sets[spec.set];
                let file = (rng.gen::<u64>() % set.files.len() as u64) as u32;
                let tag = rng.gen::<u64>();
                digest.u64(u64::from(file));
                digest.u64(tag);
                let fid = set.files[file as usize];
                let off = u64::from(spec.member) * PAGE_SIZE as u64;
                let acked = client.write(fid, off, &payload(tag)).is_ok();
                let mut ok = acked;
                if acked {
                    *writes_since_fsync += 1;
                    if spec.fsync_every > 0 && *writes_since_fsync >= spec.fsync_every {
                        *writes_since_fsync = 0;
                        ok = client.fsync(fid).is_ok();
                    }
                }
                out.regions.insert((spec.set, file, spec.member), (tag, acked));
                ok
            }
            OpClass::Read => {
                // Draw everything first: source set, file, region, kind.
                let from_write = spec.write_set.is_some() && rng.gen::<u64>() % 2 == 0;
                let set_idx = if from_write { spec.write_set.unwrap() } else { spec.set };
                let set = &ctx.sets[set_idx];
                let file = (rng.gen::<u64>() % set.files.len() as u64) as u32;
                let region = (rng.gen::<u64>() % u64::from(set.regions)) as u32;
                let getattr = rng.gen::<u64>() % 4 == 0;
                digest.u64(u64::from(from_write));
                digest.u64(u64::from(file));
                digest.u64(u64::from(region));
                digest.u64(u64::from(getattr));
                let fid = set.files[file as usize];
                if getattr {
                    return client.getattr(fid).is_ok();
                }
                match client.read(fid, u64::from(region) * PAGE_SIZE as u64, PAGE_SIZE) {
                    Ok(data) => {
                        if set.prefilled {
                            // Prefilled sets are never written: the read
                            // must return exactly the seed-derived page.
                            let want = prefill_tag(ctx.seed, set_idx, file, region);
                            if !matches!(classify_page(&data),
                                         PageKind::Tagged(t) if t == want)
                            {
                                out.scan_mismatches += 1;
                            }
                        } else {
                            match classify_page(&data) {
                                PageKind::Torn => out.torn_reads += 1,
                                PageKind::Zeros | PageKind::Tagged(_) => {}
                            }
                        }
                        true
                    }
                    Err(_) => false,
                }
            }
            OpClass::MetadataChurn => {
                let dir = spec.churn_dir.expect("churn dir resolved");
                let k = rng.gen::<u64>() % u64::from(spec.names);
                digest.u64(k);
                let name = format!("m{}_f{k}", spec.member);
                (|| {
                    let f = client.create(dir, &name, 0o644)?;
                    client.getattr(f.fid)?;
                    client.remove(dir, &name)
                })()
                .is_ok()
            }
            OpClass::StreamingScan => {
                let set = &ctx.sets[spec.set];
                let file = (rng.gen::<u64>() % set.files.len() as u64) as u32;
                digest.u64(u64::from(file));
                let fid = set.files[file as usize];
                let mut ok = true;
                for region in 0..set.regions {
                    match client.read(fid, u64::from(region) * PAGE_SIZE as u64, PAGE_SIZE) {
                        Ok(data) => {
                            let want = prefill_tag(ctx.seed, spec.set, file, region);
                            if !matches!(classify_page(&data),
                                         PageKind::Tagged(t) if t == want)
                            {
                                out.scan_mismatches += 1;
                            }
                        }
                        Err(_) => ok = false,
                    }
                }
                ok
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_embeds_and_verifies_its_tag() {
        let p = payload(0xdead_beef_1234_5678);
        assert_eq!(p.len(), PAGE_SIZE);
        assert!(matches!(classify_page(&p), PageKind::Tagged(t) if t == 0xdead_beef_1234_5678));
        let mut torn = p.clone();
        torn[PAGE_SIZE / 2] ^= 0xff;
        assert!(matches!(classify_page(&torn), PageKind::Torn));
        assert!(matches!(classify_page(&vec![0u8; PAGE_SIZE]), PageKind::Zeros));
    }

    #[test]
    fn splitmix_and_fnv_are_stable() {
        // Pinned values: the determinism contract depends on these
        // functions never drifting.
        assert_eq!(splitmix(0), 0xE220_A839_7B1D_CDAF);
        let mut f = Fnv::new();
        f.u64(42);
        let a = f.0;
        let mut g = Fnv::new();
        g.u64(42);
        assert_eq!(a, g.0);
        let mut h = Fnv::new();
        h.u64(43);
        assert_ne!(a, h.0);
    }

    #[test]
    fn sampling_is_bounded_by_the_op_budget() {
        // Regression: the post-run `service(u64::MAX)` sweep must clamp
        // sampling to the ops actually issued — sampling "up to MAX"
        // looped (and allocated) forever.
        let sc = Scenario::new(
            "unit_sampled",
            3,
            Topology::new(1, 2, 1).latency_us(10).no_flusher(),
            vec![Phase::new("mix", 6, vec![ClassSpec::new(OpClass::Write, 1, 2).sharing(2)])],
        )
        .sample_every(1);
        let r = sc.run();
        assert_eq!(r.total_ops, 12);
        assert!(!r.samples.is_empty(), "sampling was on");
        assert!(
            r.samples.len() <= r.total_ops as usize,
            "one sample per op at most, got {}",
            r.samples.len()
        );
        assert!(r.samples.iter().all(|s| s.at_op <= r.total_ops));
    }

    #[test]
    fn tiny_scenario_runs_clean() {
        let sc = Scenario::new(
            "unit_tiny",
            7,
            Topology::new(1, 2, 1).latency_us(10).no_flusher(),
            vec![Phase::new(
                "mix",
                8,
                vec![
                    ClassSpec::new(OpClass::Write, 2, 2).sharing(2),
                    ClassSpec::new(OpClass::Read, 2, 2).sharing(2),
                    ClassSpec::new(OpClass::MetadataChurn, 1, 2),
                ],
            )],
        );
        let r = sc.run();
        assert_eq!(r.total_ops, 16);
        assert!(r.clean(), "invariants: {}", r.invariants_json());
        crate::json::validate(&r.to_json()).expect("report JSON must parse");
    }
}
