//! Criterion micro-benchmarks for the hot paths of every subsystem.
//!
//! These complement the experiment harnesses (`src/bin/t*.rs`): the
//! harnesses reproduce the paper's comparative results in simulated
//! time; these measure real CPU cost of the reproduction's hot paths.

use criterion::{criterion_group, criterion_main, Criterion};
use dfs_disk::{DiskConfig, SimDisk};
use dfs_episode::{Episode, FormatParams};
use dfs_journal::{Journal, LogRegion};
use dfs_token::{TokenManager, TokenTypes};
use dfs_types::{ByteRange, ClientId, Fid, HostId, SimClock, VnodeId, VolumeId};
use dfs_vfs::{Credentials, PhysicalFs};
use std::hint::black_box;
use std::sync::Arc;

fn bench_journal(c: &mut Criterion) {
    let disk = SimDisk::new(DiskConfig::with_blocks(64 * 1024));
    let jn = Journal::format(disk, LogRegion { first_block: 1, blocks: 1024 }).unwrap();
    let buf = jn.get(5000).unwrap();
    c.bench_function("journal_update_commit", |b| {
        b.iter(|| {
            let t = jn.begin();
            jn.update(t, &buf, 0, black_box(&[7u8; 64])).unwrap();
            jn.commit(t).unwrap();
        })
    });
    c.bench_function("journal_group_commit_100", |b| {
        b.iter(|| {
            for i in 0..100 {
                let t = jn.begin();
                jn.update(t, &buf, (i % 32) * 64, &[i as u8; 64]).unwrap();
                jn.commit(t).unwrap();
            }
            jn.sync().unwrap();
        })
    });
}

fn bench_buffer_cache(c: &mut Criterion) {
    let disk = SimDisk::new(DiskConfig::with_blocks(64 * 1024));
    let jn = Journal::format(disk, LogRegion { first_block: 1, blocks: 256 }).unwrap();
    jn.get(9000).unwrap();
    c.bench_function("buffer_cache_hit", |b| {
        b.iter(|| {
            let h = jn.get(black_box(9000)).unwrap();
            black_box(h.u32_at(0));
        })
    });
}

fn bench_tokens(c: &mut Criterion) {
    struct Quiet;
    impl dfs_token::TokenHost for Quiet {
        fn host_id(&self) -> HostId {
            HostId::Client(ClientId(1))
        }
        fn revoke(
            &self,
            _t: &dfs_token::Token,
            _ty: TokenTypes,
            _s: dfs_types::SerializationStamp,
        ) -> dfs_token::RevokeResult {
            dfs_token::RevokeResult::Returned
        }
    }
    let tm = TokenManager::new();
    tm.register_host(Arc::new(Quiet));
    let host = HostId::Client(ClientId(1));
    let fid = Fid::new(VolumeId(1), VnodeId(1), 1);
    c.bench_function("token_grant_release", |b| {
        b.iter(|| {
            let (t, _) = tm
                .grant(host, fid, TokenTypes::DATA_READ, ByteRange::WHOLE)
                .unwrap();
            tm.release(host, t.id);
        })
    });
    c.bench_function("token_compatibility_check", |b| {
        let a = dfs_token::Token {
            id: dfs_token::TokenId(1),
            fid,
            types: TokenTypes::DATA_WRITE,
            range: ByteRange::new(0, 4096),
        };
        let w = dfs_token::Token {
            id: dfs_token::TokenId(2),
            fid,
            types: TokenTypes::DATA_READ,
            range: ByteRange::new(2048, 8192),
        };
        b.iter(|| black_box(dfs_token::compatible(black_box(&a), black_box(&w))))
    });
}

fn bench_episode(c: &mut Criterion) {
    let disk = SimDisk::new(DiskConfig::with_blocks(128 * 1024));
    let ep = Episode::format(disk, SimClock::new(), FormatParams::default()).unwrap();
    ep.create_volume(VolumeId(1), "v").unwrap();
    let v = PhysicalFs::mount(&*ep, VolumeId(1)).unwrap();
    let cred = Credentials::system();
    let root = v.root().unwrap();
    // Pre-populate a directory for lookups.
    for i in 0..500 {
        v.create(&cred, root, &format!("entry-{i:04}"), 0o644).unwrap();
    }
    let target = v.lookup(&cred, root, "entry-0250").unwrap();
    c.bench_function("episode_lookup_500_entries", |b| {
        b.iter(|| black_box(v.lookup(&cred, root, black_box("entry-0250")).unwrap()))
    });
    c.bench_function("episode_getattr", |b| {
        b.iter(|| black_box(v.getattr(&cred, target.fid).unwrap()))
    });
    let f = v.create(&cred, root, "bench-data", 0o644).unwrap();
    v.write(&cred, f.fid, 0, &vec![1u8; 64 * 1024]).unwrap();
    c.bench_function("episode_read_4k", |b| {
        b.iter(|| black_box(v.read(&cred, f.fid, 8192, 4096).unwrap()))
    });
    let mut n = 0u64;
    c.bench_function("episode_write_4k", |b| {
        b.iter(|| {
            n = (n + 1) % 16;
            v.write(&cred, f.fid, n * 4096, &[n as u8; 4096]).unwrap()
        })
    });
    let mut i = 0u64;
    c.bench_function("episode_create_remove", |b| {
        b.iter(|| {
            i += 1;
            let name = format!("churn-{i}");
            v.create(&cred, root, &name, 0o644).unwrap();
            v.remove(&cred, root, &name).unwrap();
        })
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    let cell = dfs_core::Cell::builder().servers(1).latency_us(0).build().unwrap();
    cell.create_volume(0, VolumeId(1), "v").unwrap();
    let cm = cell.new_client();
    let root = cm.root(VolumeId(1)).unwrap();
    let f = cm.create(root, "hot", 0o644).unwrap();
    cm.write(f.fid, 0, &vec![1u8; 16 * 1024]).unwrap();
    cm.read(f.fid, 0, 4096).unwrap();
    c.bench_function("client_cached_read_4k", |b| {
        b.iter(|| black_box(cm.read(f.fid, 4096, 4096).unwrap()))
    });
    c.bench_function("client_local_write_4k", |b| {
        b.iter(|| cm.write(f.fid, 8192, black_box(&[9u8; 4096])).unwrap())
    });
    cm.lookup(root, "hot").unwrap();
    c.bench_function("client_cached_lookup", |b| {
        b.iter(|| black_box(cm.lookup(root, "hot").unwrap()))
    });
    c.bench_function("rpc_roundtrip_ping", |b| {
        use dfs_rpc::{Addr, CallClass, Request};
        let net = cell.net().clone();
        let srv = Addr::Server(cell.server(0).id());
        b.iter(|| {
            black_box(
                net.call(
                    Addr::Client(dfs_types::ClientId(77)),
                    srv,
                    None,
                    CallClass::Normal,
                    Request::Ping,
                )
                .unwrap(),
            )
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_journal, bench_buffer_cache, bench_tokens, bench_episode, bench_end_to_end
}
criterion_main!(benches);
