//! End-to-end fixture tests: each fixture is a miniature workspace with
//! a seeded violation (or none), and the assertions pin the *exact*
//! rendered diagnostics, path and line included.

use std::path::PathBuf;

fn lint(fixture: &str) -> Vec<String> {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(fixture);
    let prefix = format!("{}/", root.display());
    dfs_lint::run(&root)
        .expect("fixture scan must succeed")
        .iter()
        .map(|d| d.to_string().replace(&prefix, ""))
        .collect()
}

#[test]
fn clean_fixture_reports_nothing() {
    assert_eq!(lint("clean"), Vec::<String>::new());
}

#[test]
fn inversion_fixture_reports_each_cycle_pair() {
    assert_eq!(
        lint("inversion"),
        vec![
            "alpha/src/lib.rs:14: [lock-order] lock-order cycle: `alpha.b` acquired while \
             holding `alpha.a`, but another path acquires them in the opposite order",
            "alpha/src/lib.rs:26: [lock-order] lock-order cycle: `beta.c` acquired while \
             holding `alpha.a` via `with_c`, but another path acquires them in the opposite \
             order",
            "beta/src/lib.rs:13: [lock-order] lock-order cycle: `alpha.b` acquired while \
             holding `beta.c` via `cross`, but another path acquires them in the opposite \
             order",
        ]
    );
}

#[test]
fn rank_inversion_fixture_reports_descending_acquisition() {
    assert_eq!(
        lint("rank_inversion"),
        vec![
            "alpha/src/lib.rs:13: [lock-order] acquiring `low` (rank 10) while holding \
             `high` (rank 20) inverts the declared hierarchy",
        ]
    );
}

#[test]
fn guard_across_revoke_fixture_flags_only_the_bad_paths() {
    assert_eq!(
        lint("guard_across_revoke"),
        vec![
            "alpha/src/lib.rs:13: [guard-across-revoke] guard on `inner` (line 12) held \
             across TokenHost::revoke; §5.1/§6.4 require revocation to be issued with no \
             locks held",
            "alpha/src/lib.rs:28: [guard-across-revoke] guard on `inner` (line 27) held \
             across TokenHost::revoke_batch; §5.1/§6.4 require revocation to be issued with \
             no locks held",
        ]
    );
}

#[test]
fn shard_order_fixture_flags_descending_and_overlapping_shards() {
    assert_eq!(
        lint("shard_order"),
        vec![
            "alpha/src/lib.rs:15: [shard-order] acquiring shard 0 of `shards` while shard 1 \
             (line 14) is held; same-field shards must be acquired in strictly ascending \
             index order",
            "alpha/src/lib.rs:27: [shard-order] acquiring `shards#0` while `shards#*` \
             (line 26) holds every shard; a lock_all guard must never overlap another \
             acquisition of the same sharded lock (self-deadlock)",
        ]
    );
}

#[test]
fn lock_shard_fixture_flags_descending_lock_table_shards() {
    assert_eq!(
        lint("lock_shard"),
        vec![
            "alpha/src/lib.rs:16: [shard-order] acquiring shard 1 of `shards` while shard 3 \
             (line 15) is held; same-field shards must be acquired in strictly ascending \
             index order",
        ]
    );
}

#[test]
fn guard_across_rpc_fixture_flags_direct_and_transitive_sends() {
    assert_eq!(
        lint("guard_across_rpc"),
        vec![
            "alpha/src/lib.rs:14: [guard-across-rpc] guard on `state` (line 13) held across \
             a dfs-rpc send; the peer's reply can block on a revocation that needs this \
             lock (§5.1/§6.4)",
            "alpha/src/lib.rs:20: [guard-across-rpc] guard on `state` (line 19) held across \
             `send_helper`, which sends dfs-rpc; the peer's reply can block on a revocation \
             that needs this lock (§5.1/§6.4)",
        ]
    );
}

#[test]
fn double_lock_fixture_flags_reacquisition() {
    assert_eq!(
        lint("double_lock"),
        vec![
            "alpha/src/lib.rs:12: [double-lock] `a` re-acquired while its guard from line \
             11 is still live (self-deadlock with a non-reentrant lock)",
        ]
    );
}

#[test]
fn std_sync_fixture_flags_std_locks() {
    assert_eq!(
        lint("std_sync"),
        vec![
            "alpha/src/lib.rs:3: [std-sync] std::sync::Mutex in non-test code; use \
             parking_lot via dfs_types::lock::OrderedMutex so the rank enforcer sees it",
        ]
    );
}

#[test]
fn fleet_rank_fixture_flags_planning_under_server_guards() {
    // The fleet planner's lock ranks *below* server-side locks (planning
    // inspects servers), and must never be pinned across a move RPC —
    // the two fleet-layer rules the real crate is built around.
    assert_eq!(
        lint("fleet_rank"),
        vec![
            "alpha/src/lib.rs:20: [lock-order] acquiring `plan` (rank 90) while holding \
             `registry` (rank 100) inverts the declared hierarchy",
            "alpha/src/lib.rs:26: [guard-across-rpc] guard on `plan` (line 25) held across \
             a dfs-rpc send; the peer's reply can block on a revocation that needs this \
             lock (§5.1/§6.4)",
        ]
    );
}

#[test]
fn lockset_fixture_flags_the_volume_header_rmw_race() {
    // Minimized PR 6 race #1: the vnode-map length is RMW'd under the
    // header lock on one path and stored back bare on another.
    assert_eq!(
        lint("lockset"),
        vec![
            "alpha/src/lib.rs:25: [lockset] shared field `map_len` has an empty candidate \
             lockset across 3 access sites: this write holds no lock, but \
             alpha/src/lib.rs:19 holds `hdr`; no common lock protects the field",
        ]
    );
}

#[test]
fn lockgap_fixture_flags_the_dirty_bit_clear_across_release() {
    // Minimized PR 6 race #2: writeback drops the frame lock for I/O and
    // clears `dirty` on reacquire without revalidating. The fixed
    // variant (version-counter check) and the merge variant (RHS
    // re-reads the fresh guard) stay clean.
    assert_eq!(
        lint("lockgap"),
        vec![
            "alpha/src/lib.rs:23: [lock-gap] write under `state` reacquired at line 22 uses \
             state read under the guard from line 18, which was released in between \
             (release/reacquire TOCTOU); revalidate after reacquiring (e.g. a version \
             counter) or hold the lock across",
        ]
    );
}

#[test]
fn unused_allow_fixture_flags_stale_and_unknown_suppressions() {
    assert_eq!(
        lint("unused_allow"),
        vec![
            "alpha/src/lib.rs:13: [unused-allow] `dfs-lint: allow(double-lock)` suppresses \
             nothing here; remove the stale annotation",
            "alpha/src/lib.rs:17: [unused-allow] `dfs-lint: allow(guard-accross-rpc)` names \
             an unknown rule; known rules are lock-order, guard-across-revoke, \
             guard-across-rpc, double-lock, std-sync, lockset, lock-gap, shard-order, \
             unused-allow",
        ]
    );
}

#[test]
fn json_rendering_is_stable_and_well_formed() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/unused_allow");
    let diags = dfs_lint::run(&root).expect("fixture scan must succeed");
    let json = dfs_lint::render_json(&diags);
    assert!(json.starts_with("{\n  \"diagnostics\": ["));
    assert!(json.trim_end().ends_with("\"total\": 2\n}"));
    assert_eq!(json.matches("\"rule\": \"unused-allow\"").count(), 2);
    // Stable order: line 13 before line 17.
    assert!(json.find("\"line\": 13").unwrap() < json.find("\"line\": 17").unwrap());
    // Rendering the empty set is still one well-formed document.
    assert_eq!(
        dfs_lint::render_json(&[]),
        "{\n  \"diagnostics\": [],\n  \"total\": 0\n}\n"
    );
}

#[test]
fn the_workspace_itself_is_clean() {
    // The real tree, all three verify.sh roots: `crates/`, `shims/`,
    // and the workspace root crate. Keeping this green is the point of
    // the tool; a violation here should fail CI with the same message
    // `cargo run -p dfs-lint` would print.
    for rel in ["..", "../../shims", "../.."] {
        let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(rel);
        let diags = dfs_lint::run(&root).expect("workspace scan must succeed");
        assert_eq!(
            diags.iter().map(|d| d.to_string()).collect::<Vec<_>>(),
            Vec::<String>::new(),
            "root {rel} must be clean"
        );
    }
}
