//! Double-acquisition fixture: `a` re-locked while already held.

use parking_lot::Mutex;

pub struct S {
    a: Mutex<u32>,
}

impl S {
    pub fn twice(&self) -> u32 {
        let g = self.a.lock();
        let h = self.a.lock();
        *g + *h
    }
}
