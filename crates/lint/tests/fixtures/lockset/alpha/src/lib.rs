//! Lockset fixture: the PR 6 volume-header RMW race, minimized. The
//! vnode map length is read-modify-written under the header lock on the
//! alloc path but stored back with no lock on the flush path, so its
//! candidate lockset intersects to the empty set with a write in the
//! mix — the Eraser condition. `generation` shows the clean shape: every
//! non-exclusive access holds `hdr`, and `&mut self` access is exempt.

use parking_lot::Mutex;

pub struct Volume {
    hdr: Mutex<u32>,
    map_len: u32,
    generation: u32,
}

impl Volume {
    pub fn vnode_alloc(&self) -> u32 {
        let g = self.hdr.lock();
        let slot = self.map_len;
        self.map_len = slot + 1;
        *g
    }

    pub fn store_back(&self) {
        self.map_len = 0;
    }

    pub fn bump(&self) {
        let _g = self.hdr.lock();
        self.generation = self.generation + 1;
    }

    pub fn reset(&mut self) {
        self.generation = 0;
    }
}
