//! Fleet fixture: the planner's lock (rank 90) sits *below* the
//! server-side volume registry (rank 100), because planning inspects
//! servers. Two seeded violations: planning under a server-side guard
//! (rank inversion) and pinning the plan across a move RPC.

use dfs_types::lock::OrderedMutex;

const FLEET_REGISTRY: u16 = 90;
const VOLUME_REGISTRY: u16 = 100;

pub struct Planner {
    net: Net,
    plan: OrderedMutex<u32, { FLEET_REGISTRY }>,
    registry: OrderedMutex<u32, { VOLUME_REGISTRY }>,
}

impl Planner {
    pub fn plans_while_inspecting(&self) -> u32 {
        let vols = self.registry.lock();
        let plan = self.plan.lock();
        *vols + *plan
    }

    pub fn plan_pinned_across_move(&self) -> u32 {
        let plan = self.plan.lock();
        self.net.call(*plan);
        *plan
    }

    pub fn clean_pass(&self) -> u32 {
        let heat = *self.registry.lock();
        let plan = self.plan.lock();
        *plan + heat
    }
}
