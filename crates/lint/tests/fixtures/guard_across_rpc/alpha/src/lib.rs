//! RPC fixture: guard held across a dfs-rpc send — directly and via a
//! helper that transitively sends.

use parking_lot::Mutex;

pub struct C {
    net: Net,
    state: Mutex<u32>,
}

impl C {
    pub fn direct(&self) -> u32 {
        let g = self.state.lock();
        self.net.call(*g);
        *g
    }

    pub fn indirect(&self) -> u32 {
        let g = self.state.lock();
        self.send_helper(*g)
    }

    fn send_helper(&self, v: u32) -> u32 {
        self.net.call(v);
        v
    }
}
