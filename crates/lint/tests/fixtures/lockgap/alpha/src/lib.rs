//! Lock-gap fixture: the PR 6 journal dirty-bit race, minimized. The
//! broken writeback snapshots frame state under the lock, releases it
//! for disk I/O, then clears the dirty bit unconditionally on the
//! reacquired guard — losing any write that landed in the gap. The
//! fixed variant revalidates against the frame's version counter before
//! clearing, which the rule recognizes as the sanctioned idiom; the
//! merge variant's write re-reads the fresh guard, likewise clean.

use parking_lot::Mutex;

pub struct Frame {
    state: Mutex<u32>,
}

impl Frame {
    pub fn writeback(&self, disk: &Disk) {
        let snap = {
            let st = self.state.lock();
            st.data
        };
        disk.push(snap);
        let mut st = self.state.lock();
        st.dirty = false;
    }

    pub fn writeback_fixed(&self, disk: &Disk) {
        let (snap, version) = {
            let st = self.state.lock();
            (st.data, st.version)
        };
        disk.push(snap);
        let mut st = self.state.lock();
        if st.version == version {
            st.dirty = false;
        }
    }

    pub fn merge_tail(&self, disk: &Disk) {
        let tail = {
            let st = self.state.lock();
            st.tail
        };
        disk.push(tail);
        let mut st = self.state.lock();
        st.tail = st.tail.max(tail);
    }
}
