//! Unused-allow fixture: a stale suppression and a misspelled rule name
//! are themselves diagnostics, while an allow that suppresses a real
//! violation stays silent.

use parking_lot::Mutex;

pub struct S {
    a: Mutex<u32>,
}

impl S {
    pub fn stale(&self) -> u32 {
        *self.a.lock() // dfs-lint: allow(double-lock) — nothing here to suppress.
    }

    pub fn typo(&self) -> u32 {
        *self.a.lock() // dfs-lint: allow(guard-accross-rpc) — misspelled rule name.
    }

    pub fn load_bearing(&self) -> u32 {
        let g = self.a.lock();
        let h = self.a.lock(); // dfs-lint: allow(double-lock) — fixture: deliberate re-entry.
        *g + *h
    }
}
