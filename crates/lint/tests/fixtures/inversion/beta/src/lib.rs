//! Cross-crate half of the inversion fixture: `c` is held while
//! calling back into `alpha`, which acquires its locks.

use parking_lot::Mutex;

pub struct T {
    c: Mutex<u32>,
}

impl T {
    pub fn with_c(&self, s: &S) -> u32 {
        let g = self.c.lock();
        cross(s, *g)
    }
}

pub fn cross(s: &S, v: u32) -> u32 {
    s.forward() + v
}
