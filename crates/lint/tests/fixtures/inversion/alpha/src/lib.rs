//! Inversion fixture: `a` and `b` acquired in both orders, plus a
//! cross-crate cycle with the `beta` fixture crate.

use parking_lot::Mutex;

pub struct S {
    a: Mutex<u32>,
    b: Mutex<u32>,
}

impl S {
    pub fn forward(&self) -> u32 {
        let g = self.a.lock();
        let h = self.b.lock();
        *g + *h
    }

    pub fn backward(&self) -> u32 {
        let g = self.b.lock();
        let h = self.a.lock();
        *g + *h
    }

    pub fn reenter(&self, t: &T) -> u32 {
        let g = self.a.lock();
        t.with_c(*g)
    }
}
