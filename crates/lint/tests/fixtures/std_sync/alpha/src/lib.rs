//! std-sync fixture: std locks are banned outside tests.

use std::sync::Mutex;

pub struct S {
    m: Mutex<u32>,
}
