//! Shard-order fixture: same-field shard guards must nest in strictly
//! ascending index order, and a `lock_all` guard may never overlap any
//! other acquisition of the same sharded lock. Computed indices are the
//! runtime enforcer's department and stay clean here.

use dfs_types::lock::OrderedShardedMutex;

pub struct S {
    shards: OrderedShardedMutex<u32, 122>,
}

impl S {
    pub fn descending(&self) -> u32 {
        let g = self.shards.lock(1);
        let h = self.shards.lock(0);
        *g + *h
    }

    pub fn ascending_is_fine(&self) -> u32 {
        let g = self.shards.lock(0);
        let h = self.shards.lock(1);
        *g + *h
    }

    pub fn all_then_one(&self) -> u32 {
        let g = self.shards.lock_all();
        let h = self.shards.lock(0);
        *h + g.len() as u32
    }

    pub fn dynamic_is_runtime_checked(&self, lo: usize, hi: usize) -> u32 {
        let g = self.shards.lock(lo);
        let h = self.shards.lock(hi);
        *g + *h
    }
}
