//! Lock-shard fixture: the server lock table's fid-hash shards (rank
//! 142, `LOCK_SHARD`) obey the same discipline as the token shards —
//! same-field guards nest only in strictly ascending index order, and
//! the sequential one-shard-at-a-time walk `release_owner` uses stays
//! clean because no two guards ever overlap.

use dfs_types::lock::OrderedShardedMutex;

pub struct LockTable {
    shards: OrderedShardedMutex<u32, 142>,
}

impl LockTable {
    pub fn cross_shard_descending(&self) -> u32 {
        let g = self.shards.lock(3);
        let h = self.shards.lock(1);
        *g + *h
    }

    pub fn release_owner_walks_one_at_a_time(&self) -> u32 {
        let mut total = 0;
        for i in 0..4 {
            let g = self.shards.lock(i);
            total += *g;
        }
        total
    }

    pub fn ascending_pair_is_fine(&self) -> u32 {
        let g = self.shards.lock(0);
        let h = self.shards.lock(2);
        *g + *h
    }
}
