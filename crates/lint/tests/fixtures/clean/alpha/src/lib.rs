//! Clean fixture: ranked locks acquired in declared order, temporaries
//! released before the next acquisition, and an audited RPC sender.

use dfs_types::lock::OrderedMutex;

const A_RANK: u16 = 10;
const B_RANK: u16 = 20;

pub struct S {
    a: OrderedMutex<u32, { A_RANK }>,
    b: OrderedMutex<u32, { B_RANK }>,
}

impl S {
    pub fn ordered(&self) -> u32 {
        let g = self.a.lock();
        let h = self.b.lock();
        *g + *h
    }

    pub fn sequential(&self) -> u32 {
        let x = *self.a.lock();
        let y = *self.b.lock();
        x + y
    }

    pub fn dropped(&self) -> u32 {
        let g = self.b.lock();
        let v = *g;
        drop(g);
        let h = self.a.lock();
        v + *h
    }
}

pub struct C {
    net: Net,
    state: OrderedMutex<u32, { A_RANK }>,
}

impl C {
    // dfs-lint: allow(guard-across-rpc) — fixture: audited sender.
    pub fn audited_send(&self) -> u32 {
        let g = self.state.lock();
        self.net.call(*g);
        *g
    }
}
