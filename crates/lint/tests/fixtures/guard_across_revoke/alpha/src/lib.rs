//! Revocation fixture: a guard held across `TokenHost::revoke` (bad)
//! and the collect-then-revoke pattern (good).

use parking_lot::Mutex;

pub struct Mgr {
    inner: Mutex<u32>,
}

impl Mgr {
    pub fn bad_revoke(&self, h: &dyn Host) -> u32 {
        let g = self.inner.lock();
        h.revoke(*g);
        *g
    }

    pub fn good_revoke(&self, h: &dyn Host) -> u32 {
        let v = {
            let g = self.inner.lock();
            *g
        };
        h.revoke(v);
        v
    }

    pub fn bad_batch(&self, h: &dyn Host) -> u32 {
        let g = self.inner.lock();
        h.revoke_batch(*g);
        *g
    }

    pub fn good_batch(&self, h: &dyn Host) -> u32 {
        let v = {
            let g = self.inner.lock();
            *g
        };
        h.revoke_batch(v);
        v
    }
}
