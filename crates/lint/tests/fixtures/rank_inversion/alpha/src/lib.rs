//! Ranked inversion fixture: acquisition descends the hierarchy.

use dfs_types::lock::OrderedMutex;

pub struct S {
    low: OrderedMutex<u32, 10>,
    high: OrderedMutex<u32, 20>,
}

impl S {
    pub fn wrong_order(&self) -> u32 {
        let g = self.high.lock();
        let h = self.low.lock();
        *g + *h
    }
}
