//! CLI for `dfs-lint`.
//!
//! Usage: `dfs-lint [ROOT]...` — each ROOT is a workspace-style
//! directory of crates (default `crates`). Prints one `path:line:
//! [rule] message` diagnostic per violation and exits non-zero if any
//! were found.

use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let roots: Vec<String> = if args.is_empty() { vec!["crates".into()] } else { args };

    let mut total = 0usize;
    for root in &roots {
        match dfs_lint::run(Path::new(root)) {
            Ok(diags) => {
                for d in &diags {
                    println!("{d}");
                }
                total += diags.len();
            }
            Err(e) => {
                eprintln!("dfs-lint: cannot scan {root}: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if total > 0 {
        eprintln!("dfs-lint: {total} violation(s)");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
