//! CLI for `dfs-lint`.
//!
//! Usage: `dfs-lint [--json] [ROOT]...` — each ROOT is a
//! workspace-style directory of crates (default `crates`). Prints one
//! `path:line: [rule] message` diagnostic per violation — or, with
//! `--json`, a single stable JSON document (diagnostics sorted by
//! path/line/rule, plus a total) — and exits non-zero if any were
//! found.

use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut roots: Vec<String> = Vec::new();
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--json" => json = true,
            "--" => {}
            _ => roots.push(a),
        }
    }
    if roots.is_empty() {
        roots.push("crates".into());
    }

    let mut all = Vec::new();
    for root in &roots {
        match dfs_lint::run(Path::new(root)) {
            Ok(diags) => all.extend(diags),
            Err(e) => {
                eprintln!("dfs-lint: cannot scan {root}: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if json {
        print!("{}", dfs_lint::render_json(&all));
    } else {
        for d in &all {
            println!("{d}");
        }
    }
    if all.is_empty() {
        ExitCode::SUCCESS
    } else {
        eprintln!("dfs-lint: {} violation(s)", all.len());
        ExitCode::FAILURE
    }
}
