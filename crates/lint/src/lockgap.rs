//! Release/reacquire TOCTOU detection (rule `lock-gap`).
//!
//! A function that (1) reads state under a guard, (2) lets the guard
//! end — explicit `drop(g)`, scope exit, rebinding, or passing the
//! guard by value into a helper documented to unlock (the journal's
//! unlock-for-I/O pattern) — and then (3) reacquires the same lock on
//! the same receiver and writes, is writing back a value derived from
//! a snapshot another thread may have invalidated during the gap. This
//! is the dirty-bit bug class from the PR 6 review: the journal's
//! writeback cleared `dirty` after dropping the frame lock for disk
//! I/O, losing writes that landed in the window.
//!
//! The sanctioned fix is *revalidate after reacquire*, and the scanner
//! recognises its three spellings as suppression idioms (no annotation
//! needed):
//!
//! - a guard-state comparison before the first write
//!   (`if st.version == version { st.dirty = false; }`);
//! - a write whose RHS re-reads the fresh guard
//!   (`log.tail = log.tail.max(tail)`);
//! - a compound assignment (`g.n += 1`), which re-reads by
//!   construction.

use crate::FileFacts;

/// One unrevalidated write-after-gap, anchored at the write line.
#[derive(Debug, Clone)]
pub struct Finding {
    pub file: usize,
    pub line: u32,
    /// Lock field, for decl-site exemption in `analyze`.
    pub field: String,
    /// `fn` declaration line, for fn-level `allow(lock-gap)` audits.
    pub fn_line: u32,
    pub fn_audited: bool,
    pub message: String,
}

/// Scans every function for same-field, same-receiver acquisition
/// pairs where the first guard read state and ended, and the second
/// writes without revalidating.
pub fn analyze(files: &[FileFacts]) -> Vec<Finding> {
    let mut out = Vec::new();
    for (fi, f) in files.iter().enumerate() {
        for func in &f.fns {
            let acqs = &func.acquisitions;
            for (j, a2) in acqs.iter().enumerate() {
                if !a2.writes || a2.revalidated {
                    continue;
                }
                for a1 in &acqs[..j] {
                    if a1.field != a2.field || a1.receiver != a2.receiver {
                        continue;
                    }
                    if !a1.reads {
                        continue;
                    }
                    // First guard still live at the reacquire → that is
                    // double-lock's department, not a gap.
                    if a2.held.iter().any(|(h, l)| *h == a1.field && *l == a1.line) {
                        continue;
                    }
                    out.push(Finding {
                        file: fi,
                        line: a2.write_line,
                        field: a2.field.clone(),
                        fn_line: func.line,
                        fn_audited: func.audited.contains("lock-gap"),
                        message: format!(
                            "write under `{}` reacquired at line {} uses state read under \
                             the guard from line {}, which was released in between \
                             (release/reacquire TOCTOU); revalidate after reacquiring \
                             (e.g. a version counter) or hold the lock across",
                            a2.field, a2.line, a1.line
                        ),
                    });
                    break;
                }
            }
        }
    }
    out
}
