//! `dfs-lint`: workspace-wide lock-order static analysis for the
//! DEcorum DFS reproduction.
//!
//! The workspace enforces its lock hierarchy twice: dynamically, via the
//! ranked [`OrderedMutex`] wrappers in `dfs-types` (debug builds panic on
//! inversion), and statically, by this tool. The static half catches
//! orderings that no test happens to execute.
//!
//! # What it checks
//!
//! Scanning every `crates/*/src/**/*.rs` file, the lint extracts lock
//! *facts* — lock field declarations (with their declared rank, parsed
//! from `OrderedMutex<T, { rank::NAME }>` types), acquisition sites, and
//! the calls made while a guard is live — then builds an inter-procedural
//! lock-order graph and reports:
//!
//! - **`lock-order`** — an acquisition edge that descends or stays level
//!   in the declared rank hierarchy, or a cycle among unranked locks:
//!   two locks acquired in both orders on some pair of paths.
//! - **`guard-across-revoke`** — a guard held across a call to
//!   `TokenHost::revoke`. Per §5.1/§6.4 of the paper, revocation RPCs
//!   must be issued with no token-manager (or other) locks held, or a
//!   client whose reply path needs those locks deadlocks the server.
//! - **`guard-across-rpc`** — a guard held across a `dfs-rpc` send
//!   (`*.net…call(...)` directly, or any function that transitively
//!   performs one). Same deadlock argument: the peer may turn around and
//!   issue a revocation that needs the held lock.
//! - **`double-lock`** — re-acquiring a field whose guard is already
//!   live in an enclosing scope (self-deadlock with a non-reentrant
//!   mutex).
//! - **`std-sync`** — `std::sync::{Mutex, RwLock, Condvar}` in non-test
//!   code; the workspace standard is `parking_lot` via the `Ordered*`
//!   wrappers.
//! - **`lockset`** — Eraser-style coverage inference: every plain field
//!   of a lock-bearing struct must have a non-empty intersection of
//!   locks held across its access sites, unless all its writes happen
//!   under `&mut self` exclusivity (see [`lockset`]).
//! - **`lock-gap`** — release/reacquire TOCTOU: state read under a
//!   guard, the guard ends, and the reacquired guard is written without
//!   revalidation (see [`lockgap`]).
//! - **`unused-allow`** — a `dfs-lint: allow(...)` that suppressed no
//!   would-be violation in this run, or names an unknown rule.
//!
//! # Precision contract
//!
//! There is no AST — a hand-rolled lexer feeds conservative pattern
//! walkers (the container has no network access, so `syn`/`quote` are
//! not available; nothing outside `std` is used). The design errs
//! toward *under*-reporting on constructs it cannot see precisely:
//! acquisitions only count on fields declared as lock types in the same
//! crate, calls resolve nearest-definition-first (same file, then same
//! crate, then workspace), and heavily overloaded std method names are
//! never resolved at all (see `CALL_STOPLIST` in `scan.rs`). Guard
//! liveness is lexical: `let g = x.f.lock();` holds `g` until its
//! scope closes or `drop(g)`; any other acquisition form is a statement
//! temporary.
//!
//! # Suppressions
//!
//! `// dfs-lint: allow(rule, ...)` on (or directly above) a line
//! suppresses the named rules there. On a `fn` line it audits the whole
//! function (e.g. the client's `store_dirty`, whose revocation-class
//! store-backs are grant-free at the server per §6.3 and therefore safe
//! to send with the vnode lock held). On a lock field declaration it
//! exempts guards of that field everywhere (e.g. the client vnode `hi`
//! lock, which §6.1 holds across RPCs by design because revocation
//! handlers only ever take `lo`).
//!
//! [`OrderedMutex`]: ../dfs_types/lock/index.html

pub mod analyze;
pub mod lockgap;
pub mod lockset;
pub mod scan;

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::path::{Path, PathBuf};

/// Rank annotation on an `Ordered*` field: a named constant from
/// `dfs_types::lock::rank` or a literal.
#[derive(Debug, Clone, PartialEq)]
pub enum RankExpr {
    Const(String),
    Literal(u16),
}

/// A lock field declaration.
#[derive(Debug, Clone)]
pub struct FieldDecl {
    pub name: String,
    pub line: u32,
    pub rank: Option<RankExpr>,
}

/// One lock acquisition site: `receiver.field.lock()` (or `.read()` /
/// `.write()`), with the guards live at that point.
#[derive(Debug, Clone)]
pub struct Acquisition {
    pub field: String,
    pub line: u32,
    /// `(field, acquisition line)` of every guard live here.
    pub held: Vec<(String, u32)>,
    /// Dotted receiver path before the field (`self`, `buf.cell`, …).
    /// Two acquisitions of one field pair up for the lock-gap rule only
    /// when their receivers match — `a.state` / `b.state` are different
    /// objects.
    pub receiver: String,
    /// State was observed through this guard (a field read through the
    /// guard variable, or a value projected out of a temporary guard).
    pub reads: bool,
    /// State was written through this guard.
    pub writes: bool,
    /// Line of the first write through the guard (valid when `writes`).
    pub write_line: u32,
    /// The first write was preceded by a guard-state comparison
    /// (`g.version == snapshot`) or its RHS re-reads the guard
    /// (`g.tail.max(local)`) — the revalidate-after-reacquire idiom,
    /// which the lock-gap rule recognises as the sanctioned fix.
    pub revalidated: bool,
}

/// Receiver kind of a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelfKind {
    /// Free function or associated fn without `self`.
    None,
    /// `&self` — shared access; the caller may alias this object.
    Ref,
    /// `&mut self` — rustc guarantees exclusive access for the call, so
    /// plain-field accesses cannot race and are exempt from lockset.
    RefMut,
    /// `self` / `mut self` by value — also exclusive.
    Value,
}

/// One access to a shared data field — a plain (non-lock, non-atomic)
/// field of a struct that also declares `Ordered*` locks — via
/// `self.field`.
#[derive(Debug, Clone)]
pub struct Access {
    pub field: String,
    pub line: u32,
    /// Assignment (`=`, `+=`, indexed store) or `&mut` borrow.
    pub write: bool,
    /// Guards live at the access, as `(lock field, acquisition line)`.
    pub held: Vec<(String, u32)>,
}

/// One call made inside a function body.
#[derive(Debug, Clone)]
pub struct Call {
    pub callee: String,
    pub line: u32,
    pub held: Vec<(String, u32)>,
    /// Dotted receiver path, e.g. `self.net` for `self.net.call(..)`.
    pub receiver: String,
    /// True for a direct `dfs-rpc` send: a `call` method on a receiver
    /// path mentioning `net`.
    pub direct_rpc: bool,
}

/// Facts about one function body.
#[derive(Debug, Clone)]
pub struct FnFacts {
    pub name: String,
    pub line: u32,
    pub self_kind: SelfKind,
    /// Declared with any `pub` visibility. Public fns are lockset roots:
    /// callers outside the scanned tree (tests, benches) may enter with
    /// no locks held, so no lock context is inferred for them.
    pub is_pub: bool,
    pub acquisitions: Vec<Acquisition>,
    pub calls: Vec<Call>,
    /// Shared-data-field accesses (see [`Access`]).
    pub accesses: Vec<Access>,
    /// Rules suppressed for the whole function via a `dfs-lint: allow`
    /// annotation on the `fn` line.
    pub audited: HashSet<String>,
}

/// Everything extracted from one source file.
#[derive(Debug, Clone)]
pub struct FileFacts {
    pub crate_name: String,
    pub path: String,
    pub fields: Vec<FieldDecl>,
    /// Plain sibling data fields of lock-bearing structs declared in
    /// this file (the lockset rule's subjects). `rank` is always `None`.
    pub data_fields: Vec<FieldDecl>,
    pub rank_consts: HashMap<String, u16>,
    pub fns: Vec<FnFacts>,
    /// `(line, type name)` of `std::sync::{Mutex,RwLock,Condvar}` uses.
    pub std_sync_sites: Vec<(u32, String)>,
    /// line → rules allowed on that line.
    pub allows: HashMap<u32, HashSet<String>>,
}

/// A reported violation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    pub path: String,
    pub line: u32,
    pub rule: String,
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.path, self.line, self.rule, self.message)
    }
}

/// Scans a workspace-style directory: every immediate subdirectory of
/// `root` that contains `src/` is treated as a crate (named after the
/// directory), and its `src/**/*.rs` files are analyzed. If `root`
/// itself contains `src/`, it is treated as a single crate. Test and
/// bench trees are deliberately out of scope — the discipline applies
/// to production code.
pub fn run(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let mut files = Vec::new();
    let mut crate_roots: Vec<(String, PathBuf)> = Vec::new();
    if root.join("src").is_dir() {
        crate_roots.push((dir_name(root), root.to_path_buf()));
    } else {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(root)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_dir() && p.join("src").is_dir())
            .collect();
        entries.sort();
        for p in entries {
            crate_roots.push((dir_name(&p), p));
        }
    }
    for (crate_name, crate_root) in crate_roots {
        let mut sources = Vec::new();
        collect_rs(&crate_root.join("src"), &mut sources)?;
        sources.sort();
        let texts: Vec<(String, String)> = sources
            .iter()
            .map(|p| std::fs::read_to_string(p).map(|s| (p.to_string_lossy().into_owned(), s)))
            .collect::<std::io::Result<_>>()?;
        // Acquisition detection needs every lock field of the crate, not
        // just the ones declared in the file being scanned — and likewise
        // access detection needs the crate-wide shared-data-field set
        // (`journal/frame.rs` declares the fields `journal/lib.rs`
        // accesses).
        let mut crate_fields: HashSet<String> = HashSet::new();
        let mut crate_data: HashSet<String> = HashSet::new();
        for (_, src) in &texts {
            crate_fields.extend(scan::lock_field_names(src));
            crate_data.extend(scan::shared_data_field_names(src));
        }
        for (rel, src) in &texts {
            files.push(scan::scan_file(&crate_name, rel, src, &crate_fields, &crate_data));
        }
    }
    Ok(analyze::analyze(&files))
}

fn dir_name(p: &Path) -> String {
    // `.` (scanning the workspace root crate) has no file name; fall
    // back to the canonical directory name so the crate key is stable.
    p.file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .or_else(|| {
            p.canonicalize()
                .ok()
                .and_then(|c| c.file_name().map(|n| n.to_string_lossy().into_owned()))
        })
        .unwrap_or_else(|| ".".into())
}

/// Renders diagnostics as one stable JSON document: diagnostics sorted
/// by (path, line, rule), plus a total. No external JSON crates — the
/// escaper covers everything the diagnostic messages can contain.
pub fn render_json(diags: &[Diagnostic]) -> String {
    fn esc(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                '\r' => out.push_str("\\r"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }
    let mut sorted: Vec<&Diagnostic> = diags.iter().collect();
    sorted.sort();
    let mut out = String::from("{\n  \"diagnostics\": [");
    for (i, d) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"path\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
            esc(&d.path),
            d.line,
            esc(&d.rule),
            esc(&d.message)
        ));
    }
    if !sorted.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str(&format!("],\n  \"total\": {}\n}}\n", sorted.len()));
    out
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().map(|e| e == "rs").unwrap_or(false) {
            out.push(path);
        }
    }
    Ok(())
}
