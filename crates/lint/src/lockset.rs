//! Eraser-style lockset inference (rule `lockset`).
//!
//! For every plain data field that lives beside an `Ordered*` lock in
//! the same struct, collect every `self.field` access site together
//! with the set of locks live there, then intersect those sets per
//! field. A field whose candidate lockset goes empty while at least
//! one of the sites is a write is shared mutable state with
//! inconsistent protection — the volume-header-RMW bug class from the
//! PR 6 review.
//!
//! Two refinements over the textbook algorithm keep the false-positive
//! rate workable on real Rust:
//!
//! - **Exclusivity**: accesses inside `&mut self` (or by-value `self`)
//!   methods are ignored. rustc already guarantees the caller holds the
//!   only reference for the duration of the call, so no lock is needed
//!   and none should be charged against the field's lockset.
//! - **Held-on-entry fixpoint**: the workspace's `*_locked` helper
//!   pattern splits "take the lock" and "touch the state" across
//!   functions. A private function's entry lockset is the intersection,
//!   over every resolved callsite, of (locks held at the call ∪ the
//!   caller's own entry set). `pub` functions are roots with an empty
//!   entry set — unscanned callers (tests, benches, other crates) may
//!   enter them lock-free. A private function no callsite reaches
//!   contributes nothing (its accesses are unreachable as far as the
//!   scan can tell, so they must not poison the intersection).

use crate::{FileFacts, SelfKind};
use std::collections::{BTreeMap, BTreeSet};

/// A lock identity, `(crate, field)` — same keying as `analyze`.
pub type FieldKey = (String, String);

/// One access site with its effective lockset (site-held ∪ fn entry).
#[derive(Debug, Clone)]
pub struct Site {
    pub file: usize,
    pub line: u32,
    pub write: bool,
    /// Lock field names (within the field's crate), sorted.
    pub held: BTreeSet<String>,
}

/// A field whose candidate lockset is empty with ≥ 1 write.
#[derive(Debug, Clone)]
pub struct Finding {
    pub crate_name: String,
    pub field: String,
    /// Declaration sites of the data field, `(file, line)` — an
    /// `allow(lockset)` on any of them exempts the field everywhere.
    pub decl: Vec<(usize, u32)>,
    /// All access sites, sorted by (file path, line).
    pub sites: Vec<Site>,
}

/// Runs the inference. `fns` maps a global function index to
/// `(file, fn)`; `resolved` gives, for each global function and each of
/// its calls (in order), the resolved global callee indices.
pub fn analyze(
    files: &[FileFacts],
    fns: &[(usize, usize)],
    resolved: &[Vec<Vec<usize>>],
) -> Vec<Finding> {
    let n = fns.len();

    // ---- held-on-entry fixpoint ----
    // `None` = no known callsite yet (⊤); `Some(set)` = intersection of
    // lock contexts over every callsite seen so far. Sets only shrink
    // once `Some`, so the iteration terminates.
    let mut entry: Vec<Option<BTreeSet<FieldKey>>> = (0..n)
        .map(|i| {
            let (fi, gi) = fns[i];
            if files[fi].fns[gi].is_pub { Some(BTreeSet::new()) } else { None }
        })
        .collect();
    let mut changed = true;
    let mut rounds = 0;
    while changed && rounds < 1000 {
        changed = false;
        rounds += 1;
        for i in 0..n {
            let Some(e) = entry[i].clone() else { continue };
            let (fi, gi) = fns[i];
            let crate_name = &files[fi].crate_name;
            for (ci, c) in files[fi].fns[gi].calls.iter().enumerate() {
                let mut ctx: BTreeSet<FieldKey> = e.clone();
                ctx.extend(c.held.iter().map(|(h, _)| (crate_name.clone(), h.clone())));
                for &g in &resolved[i][ci] {
                    if g == i {
                        continue;
                    }
                    let (gf, gg) = fns[g];
                    if files[gf].fns[gg].is_pub {
                        continue; // roots keep their empty entry set
                    }
                    let new: BTreeSet<FieldKey> = match &entry[g] {
                        None => ctx.clone(),
                        Some(old) => old.intersection(&ctx).cloned().collect(),
                    };
                    if entry[g].as_ref() != Some(&new) {
                        entry[g] = Some(new);
                        changed = true;
                    }
                }
            }
        }
    }

    // ---- per-field site collection ----
    let mut per_field: BTreeMap<FieldKey, Vec<Site>> = BTreeMap::new();
    for i in 0..n {
        let (fi, gi) = fns[i];
        let func = &files[fi].fns[gi];
        if func.accesses.is_empty() {
            continue;
        }
        // Exclusivity: `&mut self` / by-value receivers cannot race.
        if matches!(func.self_kind, SelfKind::RefMut | SelfKind::Value) {
            continue;
        }
        // Never-reached private fn: its accesses don't constrain.
        let Some(e) = &entry[i] else { continue };
        let crate_name = &files[fi].crate_name;
        for a in &func.accesses {
            let mut held: BTreeSet<String> = e
                .iter()
                .filter(|(c, _)| c == crate_name)
                .map(|(_, f)| f.clone())
                .collect();
            held.extend(a.held.iter().map(|(h, _)| h.clone()));
            per_field
                .entry((crate_name.clone(), a.field.clone()))
                .or_default()
                .push(Site { file: fi, line: a.line, write: a.write, held });
        }
    }

    // ---- intersect and report ----
    let mut out = Vec::new();
    for ((crate_name, field), mut sites) in per_field {
        if sites.len() < 2 || !sites.iter().any(|s| s.write) {
            continue;
        }
        let mut lockset = sites[0].held.clone();
        for s in &sites[1..] {
            lockset = lockset.intersection(&s.held).cloned().collect();
        }
        if !lockset.is_empty() {
            continue;
        }
        sites.sort_by(|a, b| {
            (&files[a.file].path, a.line).cmp(&(&files[b.file].path, b.line))
        });
        let decl: Vec<(usize, u32)> = files
            .iter()
            .enumerate()
            .filter(|(_, f)| f.crate_name == crate_name)
            .flat_map(|(fi, f)| {
                f.data_fields
                    .iter()
                    .filter(|d| d.name == field)
                    .map(move |d| (fi, d.line))
            })
            .collect();
        out.push(Finding { crate_name, field, decl, sites });
    }
    out
}
