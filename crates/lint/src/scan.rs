//! Single-file fact extraction: a hand-rolled Rust lexer plus pattern
//! walkers that pull out the lock-relevant facts of one source file.
//!
//! The lexer is deliberately tiny: it strips comments, strings, chars
//! and lifetimes while preserving line numbers, and emits a flat token
//! stream. Everything downstream pattern-matches on that stream — there
//! is no AST, so the walkers are conservative heuristics tuned for the
//! workspace's idiom (see the module doc in `lib.rs` for the precision
//! contract).

use crate::{Access, Acquisition, Call, FieldDecl, FileFacts, FnFacts, RankExpr, SelfKind};
use std::collections::{HashMap, HashSet};

/// One lexical token with the 1-based source line it started on.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    Ident(String),
    Num(String),
    LBrace,
    RBrace,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Punct(char),
}

#[derive(Debug, Clone)]
pub struct Sp {
    pub tok: Tok,
    pub line: u32,
}

/// Methods that acquire a lock when invoked on a known lock field.
/// `lock_all` is the sharded mutex's whole-table acquisition; its
/// acquisition name carries a `#*` suffix (see the shard arm below).
const ACQUIRE_METHODS: &[&str] = &["lock", "read", "write", "lock_all"];

/// Lock type names recognised in field declarations.
const LOCK_TYPES: &[&str] =
    &["Mutex", "RwLock", "OrderedMutex", "OrderedRwLock", "OrderedShardedMutex"];

/// Method/function names never treated as workspace calls. These are
/// overwhelmingly std collection/iterator/option methods; resolving
/// them by bare name against workspace functions (`get`, `insert`, …)
/// would fabricate call edges. The cost is missing a real workspace
/// call that shares one of these names — an acceptable recall loss for
/// the precision gain.
const CALL_STOPLIST: &[&str] = &[
    "len", "is_empty", "clone", "unwrap", "expect", "iter", "into_iter", "get", "get_mut",
    "insert", "remove", "push", "pop", "contains", "contains_key", "entry", "or_default",
    "or_insert", "or_insert_with", "map", "and_then", "then", "filter", "filter_map", "collect",
    "retain", "keys", "values", "values_mut", "iter_mut", "to_vec", "to_string", "into", "from",
    "as_ref", "as_mut", "as_str", "as_slice", "as_bytes", "cloned", "copied", "unwrap_or",
    "unwrap_or_else", "unwrap_or_default", "ok", "ok_or", "ok_or_else", "err", "min", "max",
    "min_by_key", "max_by_key", "drain", "extend", "sort", "sort_by", "sort_by_key", "position",
    "find", "any", "all", "count", "sum", "chain", "zip", "flatten", "flat_map", "rev", "take",
    "skip", "last", "first", "resize", "truncate", "clear", "starts_with", "ends_with", "split",
    "splitn", "trim", "parse", "fmt", "eq", "ne", "cmp", "partial_cmp", "hash", "next", "peek",
    "load", "store", "swap", "fetch_add", "fetch_sub", "compare_exchange", "join", "spawn",
    "sleep", "now", "elapsed", "abs", "saturating_add", "saturating_sub", "checked_add",
    "checked_sub", "wrapping_add", "is_some", "is_none", "is_ok", "is_err", "is_dir", "is_file",
    "to_owned", "as_deref", "take_while", "skip_while", "windows", "chunks", "concat",
    "copy_from_slice", "try_into", "try_from", "fill", "default", "replace", "get_or_insert_with",
    "min_by", "max_by", "step_by", "enumerate", "encode", "decode", "push_str", "repeat",
    // Generic verbs that name both std/io methods and unrelated
    // workspace functions (`disk.write(..)` must not resolve to a
    // client's `fn write` operation). Real lock acquisitions are
    // matched structurally before call detection, so stoplisting the
    // verbs here cannot hide an acquisition.
    "read", "write", "flush", "lock", "wait", "stats", "new",
];

/// Keywords that may be followed by `(` without being calls.
const KEYWORDS: &[&str] = &[
    "if", "else", "while", "match", "loop", "for", "in", "return", "break", "continue", "as",
    "let", "mut", "fn", "pub", "use", "mod", "impl", "trait", "struct", "enum", "const", "static",
    "type", "where", "move", "ref", "self", "Self", "super", "crate", "dyn", "unsafe", "async",
    "await", "true", "false",
];

pub fn lex(src: &str) -> Vec<Sp> {
    let b: Vec<char> = src.chars().collect();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let n = b.len();
    while i < n {
        let c = b[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < n && b[i + 1] == '/' => {
                while i < n && b[i] != '\n' {
                    i += 1;
                }
            }
            '/' if i + 1 < n && b[i + 1] == '*' => {
                let mut depth = 1;
                i += 2;
                while i < n && depth > 0 {
                    if b[i] == '\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            '"' => {
                i += 1;
                while i < n {
                    match b[i] {
                        '\\' => i += 2,
                        '\n' => {
                            line += 1;
                            i += 1;
                        }
                        '"' => {
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                }
            }
            '\'' => {
                // Lifetime (`'a`, `'static`) vs char literal (`'x'`,
                // `'\n'`): a char literal has exactly one unescaped char,
                // so `'X'` is a literal iff position i+2 is a quote.
                if i + 1 < n
                    && (b[i + 1].is_alphabetic() || b[i + 1] == '_')
                    && !(i + 2 < n && b[i + 2] == '\'')
                {
                    // Lifetime: skip the quote and the identifier.
                    i += 1;
                    while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                        i += 1;
                    }
                    continue;
                }
                i += 1;
                while i < n {
                    match b[i] {
                        '\\' => i += 2,
                        '\'' => {
                            i += 1;
                            break;
                        }
                        '\n' => {
                            line += 1;
                            i += 1;
                        }
                        _ => i += 1,
                    }
                }
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < n && (b[i].is_alphanumeric() || b[i] == '_' || b[i] == '.') {
                    // Stop a numeric literal before a method call (`0.lock()`
                    // is tuple-index style; `1.0` is a float — keep the
                    // common case simple: stop at `.` followed by non-digit).
                    if b[i] == '.' && (i + 1 >= n || !b[i + 1].is_ascii_digit()) {
                        break;
                    }
                    i += 1;
                }
                out.push(Sp { tok: Tok::Num(b[start..i].iter().collect()), line });
            }
            c if c.is_alphanumeric() || c == '_' => {
                let start = i;
                while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
                let ident: String = b[start..i].iter().collect();
                // Raw/byte string prefixes: r"..", r#".."#, b"..", br#".."#.
                if (ident == "r" || ident == "b" || ident == "br")
                    && i < n
                    && (b[i] == '"' || b[i] == '#')
                {
                    let mut hashes = 0;
                    while i < n && b[i] == '#' {
                        hashes += 1;
                        i += 1;
                    }
                    if i < n && b[i] == '"' {
                        i += 1;
                        'raw: while i < n {
                            if b[i] == '\n' {
                                line += 1;
                            }
                            if b[i] == '"' {
                                let mut h = 0;
                                while i + 1 + h < n && b[i + 1 + h] == '#' && h < hashes {
                                    h += 1;
                                }
                                if h == hashes {
                                    i += 1 + hashes;
                                    break 'raw;
                                }
                            }
                            i += 1;
                        }
                        continue;
                    }
                }
                out.push(Sp { tok: Tok::Ident(ident), line });
            }
            '{' => {
                out.push(Sp { tok: Tok::LBrace, line });
                i += 1;
            }
            '}' => {
                out.push(Sp { tok: Tok::RBrace, line });
                i += 1;
            }
            '(' => {
                out.push(Sp { tok: Tok::LParen, line });
                i += 1;
            }
            ')' => {
                out.push(Sp { tok: Tok::RParen, line });
                i += 1;
            }
            '[' => {
                out.push(Sp { tok: Tok::LBracket, line });
                i += 1;
            }
            ']' => {
                out.push(Sp { tok: Tok::RBracket, line });
                i += 1;
            }
            c => {
                out.push(Sp { tok: Tok::Punct(c), line });
                i += 1;
            }
        }
    }
    out
}

/// Extracts `// dfs-lint: allow(rule, ...)` annotations. Each maps to a
/// *target line*: the annotation's own line if it trails code, else the
/// next line that carries code (skipping blanks, other comments, and
/// attribute lines so an allow above `#[...]` still binds to the item).
pub fn collect_allows(src: &str) -> HashMap<u32, HashSet<String>> {
    let lines: Vec<&str> = src.lines().collect();
    let mut out: HashMap<u32, HashSet<String>> = HashMap::new();
    for (idx, raw) in lines.iter().enumerate() {
        let Some(pos) = raw.find("dfs-lint: allow(") else { continue };
        let Some(comment_pos) = raw.find("//") else { continue };
        if pos < comment_pos {
            continue; // "dfs-lint" outside a comment: not an annotation
        }
        // The marker must open the line's comment: only whitespace between
        // the first `//` and `dfs-lint`. Doc prose *mentioning* the syntax
        // (``/// use `// dfs-lint: allow(...)` ``) is not an annotation.
        if !raw[comment_pos + 2..pos].trim().is_empty() {
            continue;
        }
        let rest = &raw[pos + "dfs-lint: allow(".len()..];
        let Some(close) = rest.find(')') else { continue };
        let rules: Vec<String> = rest[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        let code_before = raw[..comment_pos].trim();
        let target = if !code_before.is_empty() {
            (idx + 1) as u32
        } else {
            // Find the next code-bearing line.
            let mut t = idx + 1;
            loop {
                if t >= lines.len() {
                    break (idx + 1) as u32;
                }
                let l = lines[t].trim();
                if l.is_empty() || l.starts_with("//") || l.starts_with("#[") || l.starts_with("#!") {
                    t += 1;
                } else {
                    break (t + 1) as u32;
                }
            }
        };
        out.entry(target).or_default().extend(rules);
    }
    out
}

/// Computes token-index ranges covered by `#[cfg(test)]` items (mods and
/// fns), which the fact walkers skip entirely.
fn cfg_test_ranges(ts: &[Sp]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i + 6 < ts.len() {
        let is_cfg_test = ts[i].tok == Tok::Punct('#')
            && ts[i + 1].tok == Tok::LBracket
            && ts[i + 2].tok == Tok::Ident("cfg".into())
            && ts[i + 3].tok == Tok::LParen
            && ts[i + 4].tok == Tok::Ident("test".into())
            && ts[i + 5].tok == Tok::RParen
            && ts[i + 6].tok == Tok::RBracket;
        if !is_cfg_test {
            i += 1;
            continue;
        }
        // Skip ahead to the item's opening brace and find its close.
        let mut j = i + 7;
        let mut depth = 0usize;
        let mut opened = false;
        while j < ts.len() {
            match ts[j].tok {
                Tok::LBrace => {
                    depth += 1;
                    opened = true;
                }
                Tok::RBrace => {
                    depth = depth.saturating_sub(1);
                    if opened && depth == 0 {
                        break;
                    }
                }
                Tok::Punct(';') if !opened => break, // `mod tests;` — nothing inline
                _ => {}
            }
            j += 1;
        }
        ranges.push((i, j));
        i = j + 1;
    }
    ranges
}

fn in_ranges(ranges: &[(usize, usize)], i: usize) -> bool {
    ranges.iter().any(|&(a, b)| i >= a && i <= b)
}

fn ident(ts: &[Sp], i: usize) -> Option<&str> {
    match ts.get(i).map(|s| &s.tok) {
        Some(Tok::Ident(s)) => Some(s),
        _ => None,
    }
}

fn is_punct(ts: &[Sp], i: usize, c: char) -> bool {
    matches!(ts.get(i).map(|s| &s.tok), Some(Tok::Punct(p)) if *p == c)
}

/// Matches a lock field declaration starting at token `i`.
fn field_decl_at(ts: &[Sp], i: usize) -> Option<FieldDecl> {
    let name = ident(ts, i)?;
    if !is_punct(ts, i + 1, ':') || is_punct(ts, i + 2, ':') {
        return None;
    }
    let mut j = i + 2;
    // Swallow a leading path (`parking_lot :: Mutex`).
    while ident(ts, j).is_some() && is_punct(ts, j + 1, ':') && is_punct(ts, j + 2, ':') {
        j += 3;
    }
    let ty = ident(ts, j)?;
    if !LOCK_TYPES.contains(&ty) || !is_punct(ts, j + 1, '<') {
        return None;
    }
    let rank = if ty.starts_with("Ordered") { parse_rank_expr(ts, j + 2) } else { None };
    Some(FieldDecl { name: name.to_string(), line: ts[i].line, rank })
}

/// Fields of one parsed `struct` declaration, split into lock fields
/// and plain data fields.
struct StructFields {
    lock_fields: Vec<FieldDecl>,
    data_fields: Vec<FieldDecl>,
}

/// Type heads that are synchronization primitives or otherwise exempt
/// from shared-data-field tracking: atomics order their own accesses,
/// condvars carry no data, `PhantomData` is zero-sized.
fn exempt_data_type(head: &str) -> bool {
    head.starts_with("Atomic")
        || head == "Condvar"
        || head == "PhantomData"
        || head == "SnapshotCell"
}

/// Parses every `struct Name { ... }` body in the token stream into its
/// field lists. Tuple and unit structs are skipped (no named fields to
/// track). Nested groups inside field types — `OrderedMutex<T,
/// { rank::X }>`, arrays, fn types — are balanced over, and `<`/`>` are
/// tracked so commas inside generics don't split a field.
fn parse_struct_fields(ts: &[Sp], skip: &[(usize, usize)]) -> Vec<StructFields> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < ts.len() {
        if in_ranges(skip, i) || ident(ts, i) != Some("struct") || ident(ts, i + 1).is_none() {
            i += 1;
            continue;
        }
        // Find the body brace at angle-depth 0; bail on `;` (unit) or
        // `(` (tuple).
        let mut j = i + 2;
        let mut angle = 0i32;
        let body = loop {
            match ts.get(j).map(|s| &s.tok) {
                None => break None,
                Some(Tok::Punct('<')) => angle += 1,
                Some(Tok::Punct('>')) if j > 0 && !is_punct(ts, j - 1, '-') => angle -= 1,
                Some(Tok::LBrace) if angle == 0 => break Some(j + 1),
                Some(Tok::LParen) | Some(Tok::Punct(';')) if angle == 0 => break None,
                _ => {}
            }
            j += 1;
        };
        let Some(mut k) = body else {
            i = j.max(i + 1);
            continue;
        };
        let mut sf = StructFields { lock_fields: Vec::new(), data_fields: Vec::new() };
        let mut grp = 0i32; // (), {}, [] depth inside the body
        angle = 0;
        let mut field_start = true;
        while k < ts.len() {
            match &ts[k].tok {
                Tok::LBrace | Tok::LParen | Tok::LBracket => grp += 1,
                Tok::RBrace | Tok::RParen | Tok::RBracket => {
                    if grp == 0 {
                        break; // closing brace of the struct body
                    }
                    grp -= 1;
                }
                Tok::Punct('<') if grp == 0 => angle += 1,
                Tok::Punct('>') if grp == 0 && !is_punct(ts, k - 1, '-') => angle -= 1,
                Tok::Punct(',') if grp == 0 && angle == 0 => field_start = true,
                Tok::Ident(name) if field_start && grp == 0 && angle == 0 => {
                    if name == "pub" {
                        // visibility; a following `(crate)` is grp > 0
                    } else if is_punct(ts, k + 1, ':') && !is_punct(ts, k + 2, ':') {
                        if let Some(d) = field_decl_at(ts, k) {
                            sf.lock_fields.push(d);
                        } else {
                            // Plain data field: strip the type's leading
                            // path to its head identifier.
                            let mut t = k + 2;
                            while is_punct(ts, t, '&') || ident(ts, t) == Some("mut") {
                                t += 1;
                            }
                            while ident(ts, t).is_some()
                                && is_punct(ts, t + 1, ':')
                                && is_punct(ts, t + 2, ':')
                            {
                                t += 3;
                            }
                            let head = ident(ts, t).unwrap_or("");
                            if !head.is_empty() && !exempt_data_type(head) {
                                sf.data_fields.push(FieldDecl {
                                    name: name.clone(),
                                    line: ts[k].line,
                                    rank: None,
                                });
                            }
                        }
                        field_start = false;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        out.push(sf);
        i = k + 1;
    }
    out
}

/// Pre-pass: the plain data fields of every struct that also declares a
/// lock field — the lockset rule's subjects. Unioned across a crate by
/// the caller, like [`lock_field_names`].
pub fn shared_data_field_names(src: &str) -> HashSet<String> {
    let ts = lex(src);
    let skip = cfg_test_ranges(&ts);
    parse_struct_fields(&ts, &skip)
        .into_iter()
        .filter(|sf| !sf.lock_fields.is_empty())
        .flat_map(|sf| sf.data_fields.into_iter().map(|d| d.name))
        .collect()
}

/// Pre-pass: just the lock field *names* declared in `src`. The caller
/// unions these across a crate so acquisition detection sees fields
/// declared in sibling files (`journal/frame.rs` declares `state`;
/// `journal/lib.rs` acquires it).
pub fn lock_field_names(src: &str) -> HashSet<String> {
    let ts = lex(src);
    let skip = cfg_test_ranges(&ts);
    let mut out = HashSet::new();
    for i in 0..ts.len() {
        if in_ranges(&skip, i) {
            continue;
        }
        if let Some(d) = field_decl_at(&ts, i) {
            out.insert(d.name);
        }
    }
    out
}

/// Scans one file into facts. `crate_lock_fields` is the union of lock
/// field names declared anywhere in the same crate (see
/// [`lock_field_names`]); `crate_data_fields` likewise for shared data
/// fields (see [`shared_data_field_names`]).
pub fn scan_file(
    crate_name: &str,
    rel_path: &str,
    src: &str,
    crate_lock_fields: &HashSet<String>,
    crate_data_fields: &HashSet<String>,
) -> FileFacts {
    let ts = lex(src);
    let mut allows = collect_allows(src);
    let skip = cfg_test_ranges(&ts);
    // Annotations inside `#[cfg(test)]` items (including annotation-shaped
    // text in test string literals) are out of scope, like the code that
    // carries them — otherwise every one would read as a stale allow.
    let skip_lines: Vec<(u32, u32)> = skip
        .iter()
        .filter_map(|&(a, b)| {
            let end = b.min(ts.len().saturating_sub(1));
            ts.get(a).map(|s| (s.line, ts[end].line))
        })
        .collect();
    allows.retain(|line, _| !skip_lines.iter().any(|&(a, b)| *line >= a && *line <= b));

    let data_fields: Vec<FieldDecl> = parse_struct_fields(&ts, &skip)
        .into_iter()
        .filter(|sf| !sf.lock_fields.is_empty())
        .flat_map(|sf| sf.data_fields)
        .collect();

    let mut facts = FileFacts {
        crate_name: crate_name.to_string(),
        path: rel_path.to_string(),
        fields: Vec::new(),
        data_fields,
        rank_consts: HashMap::new(),
        fns: Vec::new(),
        std_sync_sites: Vec::new(),
        allows,
    };

    // --- flat pass: rank consts, std::sync sites, lock field decls ---
    let mut i = 0;
    while i < ts.len() {
        if in_ranges(&skip, i) {
            i += 1;
            continue;
        }
        // `const NAME: u16 = N ;`
        if ident(&ts, i) == Some("const")
            && ident(&ts, i + 3) == Some("u16")
            && is_punct(&ts, i + 2, ':')
            && is_punct(&ts, i + 4, '=')
        {
            if let (Some(name), Some(Tok::Num(v))) = (ident(&ts, i + 1), ts.get(i + 5).map(|s| &s.tok))
            {
                if let Ok(v) = v.replace('_', "").parse::<u16>() {
                    facts.rank_consts.insert(name.to_string(), v);
                }
            }
        }
        // `std :: sync :: {Mutex,RwLock,Condvar}` — rule (d)
        if ident(&ts, i) == Some("std")
            && is_punct(&ts, i + 1, ':')
            && is_punct(&ts, i + 2, ':')
            && ident(&ts, i + 3) == Some("sync")
            && is_punct(&ts, i + 4, ':')
            && is_punct(&ts, i + 5, ':')
        {
            if let Some(t) = ident(&ts, i + 6) {
                if matches!(t, "Mutex" | "RwLock" | "Condvar") {
                    facts.std_sync_sites.push((ts[i].line, t.to_string()));
                }
            }
        }
        // Lock field decl: `name : [path ::]* LockType <` — records the
        // field and, for Ordered* types, its rank expression.
        if let Some(d) = field_decl_at(&ts, i) {
            facts.fields.push(d);
        }
        i += 1;
    }

    // --- structural pass: functions ---
    let mut i = 0;
    while i < ts.len() {
        if in_ranges(&skip, i) {
            i += 1;
            continue;
        }
        if ident(&ts, i) == Some("fn") {
            if let Some(name) = ident(&ts, i + 1) {
                let fn_line = ts[i].line;
                // Find the body: first `{` at paren-depth 0, or `;` (no body).
                let mut j = i + 2;
                let mut paren = 0i32;
                let mut body_start = None;
                while j < ts.len() {
                    match ts[j].tok {
                        Tok::LParen | Tok::LBracket => paren += 1,
                        Tok::RParen | Tok::RBracket => paren -= 1,
                        Tok::LBrace if paren == 0 => {
                            body_start = Some(j);
                            break;
                        }
                        Tok::Punct(';') if paren == 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
                if let Some(bs) = body_start {
                    // Matching close brace.
                    let mut depth = 0usize;
                    let mut be = bs;
                    while be < ts.len() {
                        match ts[be].tok {
                            Tok::LBrace => depth += 1,
                            Tok::RBrace => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        be += 1;
                    }
                    let mut lock_fields: HashSet<&str> =
                        facts.fields.iter().map(|f| f.name.as_str()).collect();
                    lock_fields.extend(crate_lock_fields.iter().map(|s| s.as_str()));
                    let mut data_fields: HashSet<&str> =
                        facts.data_fields.iter().map(|f| f.name.as_str()).collect();
                    data_fields.extend(crate_data_fields.iter().map(|s| s.as_str()));
                    let mut f = analyze_body(
                        name,
                        fn_line,
                        &ts[i + 2..bs],
                        &ts[bs..=be.min(ts.len() - 1)],
                        &lock_fields,
                        &data_fields,
                    );
                    f.is_pub = is_pub_fn(&ts, i);
                    if let Some(rules) = facts.allows.get(&fn_line) {
                        f.audited = rules.clone();
                    }
                    facts.fns.push(f);
                    i = be + 1;
                    continue;
                }
            }
        }
        i += 1;
    }

    facts
}

/// Parses the rank expression of `OrderedMutex<T, HERE>` starting just
/// inside the `<`. Recognises `{ rank :: NAME }`, `{ NAME }`, and a
/// literal `N` after the type parameter, scanning a bounded window.
fn parse_rank_expr(ts: &[Sp], start: usize) -> Option<RankExpr> {
    let mut depth = 1i32; // inside one `<`
    let mut j = start;
    let limit = (start + 64).min(ts.len());
    while j < limit && depth > 0 {
        match &ts[j].tok {
            Tok::Punct('<') => depth += 1,
            Tok::Punct('>') => depth -= 1,
            Tok::LBrace if depth == 1 => {
                if ident(ts, j + 1) == Some("rank")
                    && is_punct(ts, j + 2, ':')
                    && is_punct(ts, j + 3, ':')
                {
                    if let Some(name) = ident(ts, j + 4) {
                        return Some(RankExpr::Const(name.to_string()));
                    }
                }
                if let Some(Tok::Num(v)) = ts.get(j + 1).map(|s| &s.tok) {
                    if let Ok(v) = v.replace('_', "").parse::<u16>() {
                        return Some(RankExpr::Literal(v));
                    }
                }
                if let Some(name) = ident(ts, j + 1) {
                    if matches!(ts.get(j + 2).map(|s| &s.tok), Some(Tok::RBrace)) {
                        return Some(RankExpr::Const(name.to_string()));
                    }
                }
            }
            Tok::Punct(',') if depth == 1 => {
                if let Some(Tok::Num(v)) = ts.get(j + 1).map(|s| &s.tok) {
                    if let Ok(v) = v.replace('_', "").parse::<u16>() {
                        return Some(RankExpr::Literal(v));
                    }
                }
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// True if the `fn` at `fn_idx` carries any `pub` visibility (looking
/// back over `pub(crate)` groups and `async`/`unsafe`/`const`/`extern`
/// qualifiers).
fn is_pub_fn(ts: &[Sp], fn_idx: usize) -> bool {
    let mut k = fn_idx;
    let mut steps = 0;
    while k > 0 && steps < 8 {
        k -= 1;
        steps += 1;
        match &ts[k].tok {
            Tok::Ident(id) if matches!(id.as_str(), "async" | "unsafe" | "const" | "extern") => {}
            Tok::Ident(id) if id == "pub" => return true,
            Tok::RParen => {
                // Walk over a `pub(crate)` / `pub(in path)` group.
                let mut d = 1;
                while k > 0 && d > 0 {
                    k -= 1;
                    match ts[k].tok {
                        Tok::RParen => d += 1,
                        Tok::LParen => d -= 1,
                        _ => {}
                    }
                }
            }
            _ => return false,
        }
    }
    false
}

/// Receiver kind from the signature tokens (everything between the fn
/// name and the body brace). The parameter list is the first `(` at
/// angle-depth 0 — parens inside generic bounds (`F: Fn() -> T`) sit at
/// depth ≥ 1.
fn self_kind_of_sig(sig: &[Sp]) -> SelfKind {
    let mut angle = 0i32;
    let mut k = 0;
    let params = loop {
        match sig.get(k).map(|s| &s.tok) {
            None => return SelfKind::None,
            Some(Tok::Punct('<')) => angle += 1,
            Some(Tok::Punct('>')) if k > 0 && !is_punct(sig, k - 1, '-') => angle -= 1,
            Some(Tok::LParen) if angle == 0 => break k + 1,
            _ => {}
        }
        k += 1;
    };
    // Lifetimes are stripped by the lexer, so `&'a mut self` shows as
    // `& mut self`.
    if is_punct(sig, params, '&') {
        if ident(sig, params + 1) == Some("mut") && ident(sig, params + 2) == Some("self") {
            SelfKind::RefMut
        } else if ident(sig, params + 1) == Some("self") {
            SelfKind::Ref
        } else {
            SelfKind::None
        }
    } else if ident(sig, params) == Some("self")
        || (ident(sig, params) == Some("mut") && ident(sig, params + 1) == Some("self"))
    {
        SelfKind::Value
    } else {
        SelfKind::None
    }
}

/// What a projection starting just after a field (or just after a
/// temporary guard's `()`) does with the value.
enum Proj {
    /// Observed: read, passed to a method, or compared.
    Read,
    /// Compared against something (`==`, `!=`, `<`, `>`): the
    /// revalidate-after-reacquire idiom's check.
    Compare,
    /// Assigned (`=`, compound `+=`, indexed store); `eq` is the token
    /// index of the final `=` so the RHS can be inspected.
    Write { line: u32, eq: usize },
}

/// Classifies the projection at `j` (the token after the field name):
/// walks over index groups (`[..]`) and field chains (`.a.b`), stopping
/// at a method call (mutation through `&mut` methods is invisible —
/// counted as a read, an accepted recall loss), an assignment operator,
/// or a comparison.
fn classify_after(body: &[Sp], mut j: usize) -> Proj {
    loop {
        match body.get(j).map(|s| &s.tok) {
            Some(Tok::LBracket) => {
                let mut d = 0i32;
                while j < body.len() {
                    match body[j].tok {
                        Tok::LBracket => d += 1,
                        Tok::RBracket => {
                            d -= 1;
                            if d == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                j += 1;
            }
            Some(Tok::Punct('.')) => match body.get(j + 1).map(|s| &s.tok) {
                Some(Tok::Ident(_)) => {
                    if matches!(body.get(j + 2).map(|s| &s.tok), Some(Tok::LParen)) {
                        return Proj::Read;
                    }
                    j += 2;
                }
                Some(Tok::Num(_)) => j += 2, // tuple index
                _ => return Proj::Read,
            },
            Some(Tok::Punct('=')) => {
                if matches!(body.get(j + 1).map(|s| &s.tok), Some(Tok::Punct('='))) {
                    return Proj::Compare;
                }
                return Proj::Write { line: body[j].line, eq: j };
            }
            Some(Tok::Punct(op))
                if matches!(op, '+' | '-' | '*' | '/' | '%' | '&' | '|' | '^')
                    && matches!(body.get(j + 1).map(|s| &s.tok), Some(Tok::Punct('='))) =>
            {
                return Proj::Write { line: body[j].line, eq: j + 1 };
            }
            Some(Tok::Punct('!'))
                if matches!(body.get(j + 1).map(|s| &s.tok), Some(Tok::Punct('='))) =>
            {
                return Proj::Compare;
            }
            Some(Tok::Punct('<')) | Some(Tok::Punct('>')) => return Proj::Compare,
            _ => return Proj::Read,
        }
    }
}

/// True when the `=` at `eq` is the tail of a compound operator
/// (`+=`, `|=`, …): the store re-reads the current value, so it can
/// never write back a stale pre-gap snapshot.
fn compound_assign(body: &[Sp], eq: usize) -> bool {
    matches!(
        body.get(eq.wrapping_sub(1)).map(|s| &s.tok),
        Some(Tok::Punct('+' | '-' | '*' | '/' | '%' | '&' | '|' | '^'))
    )
}

/// True if the assignment RHS starting after token `eq` mentions
/// `name.` before the statement ends — the write merges in state
/// re-read from the fresh guard (`log.tail = log.tail.max(tail)`),
/// which the lock-gap rule accepts as revalidation.
fn rhs_mentions(body: &[Sp], eq: usize, name: &str) -> bool {
    let lim = (eq + 120).min(body.len());
    for j in eq + 1..lim {
        match &body[j].tok {
            Tok::Punct(';') => return false,
            Tok::Ident(id) if id == name && is_punct(body, j + 1, '.') => return true,
            _ => {}
        }
    }
    false
}

/// A guard live in some scope.
struct Guard {
    name: Option<String>,
    field: String,
    line: u32,
    /// Index of this guard's entry in `FnFacts::acquisitions`.
    acq: usize,
}

/// Dotted identifier path before the token at `idx`: for `a.b.c` with
/// `idx` at `c`, returns `"a.b"`; empty when there is no receiver.
fn dotted_receiver(body: &[Sp], idx: usize) -> String {
    if idx < 1 || !is_punct(body, idx - 1, '.') {
        return String::new();
    }
    let mut k = idx - 1;
    let mut parts: Vec<String> = Vec::new();
    while k >= 1 {
        if let Some(p) = ident(body, k - 1) {
            if is_punct(body, k, '.') {
                parts.push(p.to_string());
                if k < 2 {
                    break;
                }
                k -= 2;
                continue;
            }
        }
        break;
    }
    parts.reverse();
    parts.join(".")
}

/// Acquisition index of the innermost live guard named `name`.
fn guard_acq(scopes: &[Vec<Guard>], name: &str) -> Option<usize> {
    scopes
        .iter()
        .rev()
        .find_map(|s| s.iter().rev().find(|g| g.name.as_deref() == Some(name)))
        .map(|g| g.acq)
}

/// Removes the innermost live guard named `name`, if any.
fn guard_remove(scopes: &mut [Vec<Guard>], name: &str) {
    for s in scopes.iter_mut().rev() {
        if let Some(pos) = s.iter().rposition(|g| g.name.as_deref() == Some(name)) {
            s.remove(pos);
            return;
        }
    }
}

/// Walks one fn body tracking guard liveness per lexical scope.
fn analyze_body(
    name: &str,
    fn_line: u32,
    sig: &[Sp],
    body: &[Sp],
    lock_fields: &HashSet<&str>,
    data_fields: &HashSet<&str>,
) -> FnFacts {
    let mut f = FnFacts {
        name: name.to_string(),
        line: fn_line,
        self_kind: self_kind_of_sig(sig),
        is_pub: false,
        acquisitions: Vec::new(),
        calls: Vec::new(),
        accesses: Vec::new(),
        audited: HashSet::new(),
    };
    // Acquisition indices whose guard state has been compared against
    // something since the acquisition — a later first write through the
    // same guard counts as revalidated.
    let mut compared: HashSet<usize> = HashSet::new();
    let mut scopes: Vec<Vec<Guard>> = vec![Vec::new()];
    // Per-statement binding state.
    let mut pending_binding: Option<String> = None;
    let mut binding_used = false;
    let mut value_projected = false; // `let x = *m.lock()` — x is not a guard
    let mut stmt_start = true;

    let held_fields = |scopes: &Vec<Vec<Guard>>| -> Vec<(String, u32)> {
        scopes
            .iter()
            .flat_map(|s| s.iter().map(|g| (g.field.clone(), g.line)))
            .collect()
    };

    let mut i = 0;
    while i < body.len() {
        match &body[i].tok {
            Tok::LBrace => {
                scopes.push(Vec::new());
                pending_binding = None;
                stmt_start = true;
                i += 1;
            }
            Tok::RBrace => {
                scopes.pop();
                if scopes.is_empty() {
                    scopes.push(Vec::new());
                }
                pending_binding = None;
                stmt_start = true;
                i += 1;
            }
            Tok::Punct(';') => {
                pending_binding = None;
                binding_used = false;
                value_projected = false;
                stmt_start = true;
                i += 1;
            }
            Tok::Ident(id) if id == "let" && stmt_start => {
                // `let [mut] NAME =` — only the immediate-`=` form binds.
                let mut j = i + 1;
                if ident(body, j) == Some("mut") {
                    j += 1;
                }
                if let Some(n) = ident(body, j) {
                    if is_punct(body, j + 1, '=') && !is_punct(body, j + 2, '=') {
                        pending_binding = Some(n.to_string());
                        binding_used = false;
                        value_projected = matches!(
                            body.get(j + 2).map(|s| &s.tok),
                            Some(Tok::Punct('*')) | Some(Tok::Punct('&'))
                        );
                        i = j + 2;
                        stmt_start = false;
                        continue;
                    }
                }
                stmt_start = false;
                i += 1;
            }
            Tok::Ident(id)
                if stmt_start
                    && is_punct(body, i + 1, '=')
                    && !is_punct(body, i + 2, '=')
                    && !KEYWORDS.contains(&id.as_str()) =>
            {
                // Re-assignment: `guard = field.lock();`
                pending_binding = Some(id.clone());
                binding_used = false;
                value_projected = matches!(
                    body.get(i + 2).map(|s| &s.tok),
                    Some(Tok::Punct('*')) | Some(Tok::Punct('&'))
                );
                stmt_start = false;
                i += 2;
            }
            Tok::Ident(id) if id == "drop" && matches!(body.get(i + 1).map(|s| &s.tok), Some(Tok::LParen)) => {
                if let Some(n) = ident(body, i + 2) {
                    if matches!(body.get(i + 3).map(|s| &s.tok), Some(Tok::RParen)) {
                        for s in scopes.iter_mut().rev() {
                            if let Some(pos) =
                                s.iter().rposition(|g| g.name.as_deref() == Some(n))
                            {
                                s.remove(pos);
                                break;
                            }
                        }
                        i += 4;
                        stmt_start = false;
                        continue;
                    }
                }
                i += 1;
                stmt_start = false;
            }
            Tok::Ident(m)
                if ACQUIRE_METHODS.contains(&m.as_str())
                    && is_punct(body, i.wrapping_sub(1), '.')
                    && matches!(body.get(i + 1).map(|s| &s.tok), Some(Tok::LParen))
                    && matches!(body.get(i + 2).map(|s| &s.tok), Some(Tok::RParen))
                    && ident(body, i.wrapping_sub(2))
                        .map(|f| lock_fields.contains(f))
                        .unwrap_or(false) =>
            {
                let base = ident(body, i - 2).unwrap();
                // `lock_all()` holds every shard of a sharded field at
                // once; the `#*` suffix marks that for the shard-order
                // rule while `base` remains the declared field.
                let field =
                    if m == "lock_all" { format!("{base}#*") } else { base.to_string() };
                let line = body[i].line;
                let acq_idx = f.acquisitions.len();
                f.acquisitions.push(Acquisition {
                    field: field.clone(),
                    line,
                    held: held_fields(&scopes),
                    receiver: dotted_receiver(body, i - 2),
                    reads: false,
                    writes: false,
                    write_line: 0,
                    revalidated: false,
                });
                // Guard binding: `let g = x.f.lock();` — the call result
                // must be the whole RHS (next token `;`) and not deref'd.
                let binds = pending_binding.is_some()
                    && !binding_used
                    && !value_projected
                    && is_punct(body, i + 3, ';');
                if binds {
                    binding_used = true;
                    let gname = pending_binding.clone();
                    if let Some(n) = gname.as_deref() {
                        // Rebinding a name ends the guard it previously held.
                        guard_remove(&mut scopes, n);
                    }
                    scopes
                        .last_mut()
                        .unwrap()
                        .push(Guard { name: gname, field, line, acq: acq_idx });
                } else {
                    // Statement temporary (`self.f.lock().x += 1`): the guard
                    // lives only for this expression — classify what it does.
                    let a = &mut f.acquisitions[acq_idx];
                    match classify_after(body, i + 3) {
                        Proj::Write { line: wl, eq } => {
                            a.writes = true;
                            a.write_line = wl;
                            a.revalidated = compound_assign(body, eq);
                        }
                        Proj::Read | Proj::Compare => a.reads = true,
                    }
                }
                i += 3;
                stmt_start = false;
            }
            // `field.lock(idx)` on a sharded lock: the shard index joins
            // the lock identity — `field#3` for a literal, `field#?` when
            // the index is computed (runtime `acquire_indexed` judges
            // those) — so the shard-order rule can check same-field
            // nesting statically where the index is knowable.
            Tok::Ident(m)
                if m == "lock"
                    && is_punct(body, i.wrapping_sub(1), '.')
                    && matches!(body.get(i + 1).map(|s| &s.tok), Some(Tok::LParen))
                    && !matches!(body.get(i + 2).map(|s| &s.tok), Some(Tok::RParen))
                    && ident(body, i.wrapping_sub(2))
                        .map(|f| lock_fields.contains(f))
                        .unwrap_or(false) =>
            {
                // Matching close paren of the argument list.
                let mut d = 0i32;
                let mut close = i + 1;
                while close < body.len() {
                    match body[close].tok {
                        Tok::LParen | Tok::LBracket | Tok::LBrace => d += 1,
                        Tok::RParen | Tok::RBracket | Tok::RBrace => {
                            d -= 1;
                            if d == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    close += 1;
                }
                let base = ident(body, i - 2).unwrap();
                let field = match (close == i + 3, body.get(i + 2).map(|s| &s.tok)) {
                    (true, Some(Tok::Num(n))) => format!("{base}#{n}"),
                    _ => format!("{base}#?"),
                };
                let line = body[i].line;
                let acq_idx = f.acquisitions.len();
                f.acquisitions.push(Acquisition {
                    field: field.clone(),
                    line,
                    held: held_fields(&scopes),
                    receiver: dotted_receiver(body, i - 2),
                    reads: false,
                    writes: false,
                    write_line: 0,
                    revalidated: false,
                });
                let binds = pending_binding.is_some()
                    && !binding_used
                    && !value_projected
                    && is_punct(body, close + 1, ';');
                if binds {
                    binding_used = true;
                    let gname = pending_binding.clone();
                    if let Some(n) = gname.as_deref() {
                        guard_remove(&mut scopes, n);
                    }
                    scopes
                        .last_mut()
                        .unwrap()
                        .push(Guard { name: gname, field, line, acq: acq_idx });
                } else {
                    let a = &mut f.acquisitions[acq_idx];
                    match classify_after(body, close + 1) {
                        Proj::Write { line: wl, eq } => {
                            a.writes = true;
                            a.write_line = wl;
                            a.revalidated = compound_assign(body, eq);
                        }
                        Proj::Read | Proj::Compare => a.reads = true,
                    }
                }
                i = close + 1;
                stmt_start = false;
            }
            // `x.lock_lo()` — the client's publishing wrapper around the
            // vnode `lo` mutex: counts as an acquisition of `lo` itself
            // (same receiver semantics as a bare `lo.lock()`), keeping
            // the lock-order / lock-gap pairing intact across the
            // seqlock refactor.
            Tok::Ident(m)
                if m == "lock_lo"
                    && is_punct(body, i.wrapping_sub(1), '.')
                    && matches!(body.get(i + 1).map(|s| &s.tok), Some(Tok::LParen))
                    && matches!(body.get(i + 2).map(|s| &s.tok), Some(Tok::RParen))
                    && lock_fields.contains("lo") =>
            {
                let field = "lo".to_string();
                let line = body[i].line;
                let acq_idx = f.acquisitions.len();
                f.acquisitions.push(Acquisition {
                    field: field.clone(),
                    line,
                    held: held_fields(&scopes),
                    receiver: dotted_receiver(body, i),
                    reads: false,
                    writes: false,
                    write_line: 0,
                    revalidated: false,
                });
                let binds = pending_binding.is_some()
                    && !binding_used
                    && !value_projected
                    && is_punct(body, i + 3, ';');
                if binds {
                    binding_used = true;
                    let gname = pending_binding.clone();
                    if let Some(n) = gname.as_deref() {
                        guard_remove(&mut scopes, n);
                    }
                    scopes
                        .last_mut()
                        .unwrap()
                        .push(Guard { name: gname, field, line, acq: acq_idx });
                } else {
                    let a = &mut f.acquisitions[acq_idx];
                    match classify_after(body, i + 3) {
                        Proj::Write { line: wl, eq } => {
                            a.writes = true;
                            a.write_line = wl;
                            a.revalidated = compound_assign(body, eq);
                        }
                        Proj::Read | Proj::Compare => a.reads = true,
                    }
                }
                i += 3;
                stmt_start = false;
            }
            // `g.field …` / `*g = …` — an access through a live named guard:
            // feeds the guard's acquisition record (reads, writes, and the
            // revalidate-after-reacquire idiom for lock-gap).
            Tok::Ident(id)
                if !is_punct(body, i.wrapping_sub(1), '.')
                    && (is_punct(body, i + 1, '.') || is_punct(body, i.wrapping_sub(1), '*'))
                    && guard_acq(&scopes, id).is_some() =>
            {
                let acq = guard_acq(&scopes, id).unwrap();
                match classify_after(body, i + 1) {
                    Proj::Write { line, eq } => {
                        // A write is "revalidated" when the guard's state was
                        // compared since reacquisition (`if st.version == v`)
                        // or the RHS re-reads the fresh guard
                        // (`log.tail = log.tail.max(tail)`).
                        let reval = compared.contains(&acq)
                            || compound_assign(body, eq)
                            || rhs_mentions(body, eq, id);
                        let a = &mut f.acquisitions[acq];
                        if !a.writes {
                            a.writes = true;
                            a.write_line = line;
                            a.revalidated = reval;
                        }
                    }
                    Proj::Compare => {
                        compared.insert(acq);
                        f.acquisitions[acq].reads = true;
                    }
                    Proj::Read => f.acquisitions[acq].reads = true,
                }
                i += 1;
                stmt_start = false;
            }
            // A bare guard passed by value (`helper(g)`): ownership moves into
            // the callee, which becomes responsible for unlocking — the guard
            // is no longer live here (the journal's unlock-for-I/O pattern).
            Tok::Ident(id)
                if !is_punct(body, i + 1, '.')
                    && matches!(
                        body.get(i.wrapping_sub(1)).map(|s| &s.tok),
                        Some(Tok::LParen) | Some(Tok::Punct(','))
                    )
                    && matches!(
                        body.get(i + 1).map(|s| &s.tok),
                        Some(Tok::RParen) | Some(Tok::Punct(','))
                    )
                    && guard_acq(&scopes, id).is_some() =>
            {
                guard_remove(&mut scopes, id);
                i += 1;
                stmt_start = false;
            }
            // `self.field` — access to a plain data field that lives beside a
            // lock field in the same struct (lockset analysis input).
            Tok::Ident(id)
                if is_punct(body, i.wrapping_sub(1), '.')
                    && ident(body, i.wrapping_sub(2)) == Some("self")
                    && !matches!(body.get(i + 1).map(|s| &s.tok), Some(Tok::LParen))
                    && data_fields.contains(id.as_str())
                    && !lock_fields.contains(id.as_str()) =>
            {
                let borrowed_mut = ident(body, i.wrapping_sub(3)) == Some("mut")
                    && is_punct(body, i.wrapping_sub(4), '&');
                let write =
                    borrowed_mut || matches!(classify_after(body, i + 1), Proj::Write { .. });
                f.accesses.push(Access {
                    field: id.clone(),
                    line: body[i].line,
                    write,
                    held: held_fields(&scopes),
                });
                i += 1;
                stmt_start = false;
            }
            Tok::Ident(callee)
                if matches!(body.get(i + 1).map(|s| &s.tok), Some(Tok::LParen))
                    && !KEYWORDS.contains(&callee.as_str())
                    && !CALL_STOPLIST.contains(&callee.as_str())
                    && !callee.chars().next().map(char::is_uppercase).unwrap_or(true)
                    // `Path::assoc(..)` calls don't resolve by bare name:
                    // the path names a type, not a workspace function.
                    && !is_punct(body, i.wrapping_sub(1), ':') =>
            {
                // Method or free-fn call. Build a receiver hint from the
                // dotted path immediately before the name.
                let recv = dotted_receiver(body, i);
                let direct_rpc = callee == "call" && recv.contains("net");
                f.calls.push(Call {
                    callee: callee.clone(),
                    line: body[i].line,
                    held: held_fields(&scopes),
                    receiver: recv,
                    direct_rpc,
                });
                i += 1;
                stmt_start = false;
            }
            Tok::Ident(_) | Tok::Num(_) => {
                stmt_start = false;
                i += 1;
            }
            _ => {
                i += 1;
            }
        }
    }
    f
}

/// True if `name` is on the call stoplist (exposed for tests).
pub fn stoplisted(name: &str) -> bool {
    CALL_STOPLIST.contains(&name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter_map(|s| match s.tok {
                Tok::Ident(i) => Some(i),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn lexer_strips_strings_comments_and_lifetimes() {
        let src = r##"
            // line comment with lock()
            /* block /* nested */ still comment */
            let s = "a.lock()"; let r = r#"raw.lock()"#;
            fn f<'a>(x: &'a str) -> char { 'x' }
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"lock".to_string()));
        // the lifetime 'a must not eat the following tokens
        assert!(ids.contains(&"str".to_string()));
        assert!(ids.contains(&"char".to_string()));
    }

    #[test]
    fn lexer_distinguishes_char_literal_from_lifetime() {
        // 'x' is a char literal; 'a in <'a> is a lifetime. Both must
        // leave the surrounding identifiers intact.
        let ids = idents("let c = 'x'; struct S<'a> { f: &'a u8 }");
        assert!(ids.contains(&"struct".to_string()));
        assert!(ids.contains(&"u8".to_string()));
        assert!(!ids.contains(&"x".to_string()));
    }

    #[test]
    fn lexer_tracks_lines_across_multiline_comments() {
        let ts = lex("/* one\ntwo\nthree */ marker");
        assert_eq!(ts.len(), 1);
        assert_eq!(ts[0].line, 3);
    }

    #[test]
    fn allow_on_own_line_targets_next_code_line_skipping_attrs() {
        let src = "\n// dfs-lint: allow(guard-across-rpc)\n#[inline]\nfn f() {}\n";
        let allows = collect_allows(src);
        // comment on line 2, attribute on line 3, code on line 4
        assert!(allows.get(&4).is_some_and(|s| s.contains("guard-across-rpc")));
        assert!(!allows.contains_key(&3));
    }

    #[test]
    fn trailing_allow_targets_its_own_line() {
        let src = "fn f() {} // dfs-lint: allow(lock-order, double-lock)\n";
        let allows = collect_allows(src);
        let set = allows.get(&1).expect("line 1 annotated");
        assert!(set.contains("lock-order") && set.contains("double-lock"));
    }

    #[test]
    fn drop_ends_guard_liveness() {
        let src = "
pub struct S { a: parking_lot::Mutex<u32>, b: parking_lot::Mutex<u32> }
impl S {
    fn f(&self) {
        let g = self.b.lock();
        drop(g);
        let h = self.a.lock();
        let _ = h;
    }
}
";
        let fields = lock_field_names(src);
        let facts = scan_file("x", "x/src/lib.rs", src, &fields, &shared_data_field_names(src));
        let f = &facts.fns[0];
        let a = f.acquisitions.iter().find(|a| a.field == "a").unwrap();
        assert!(a.held.is_empty(), "drop(g) must release b: {:?}", a.held);
    }

    #[test]
    fn statement_temporary_is_not_a_live_guard() {
        let src = "
pub struct S { a: parking_lot::Mutex<u32>, b: parking_lot::Mutex<u32> }
impl S {
    fn f(&self) {
        *self.b.lock() += 1;
        let h = self.a.lock();
        let _ = h;
    }
}
";
        let fields = lock_field_names(src);
        let facts = scan_file("x", "x/src/lib.rs", src, &fields, &shared_data_field_names(src));
        let a = facts.fns[0].acquisitions.iter().find(|a| a.field == "a").unwrap();
        assert!(a.held.is_empty(), "temporary must not be held: {:?}", a.held);
    }

    #[test]
    fn cfg_test_modules_are_skipped() {
        let src = "
pub struct S { a: parking_lot::Mutex<u32> }
#[cfg(test)]
mod tests {
    fn f(s: &super::S) {
        let g = s.a.lock();
        let h = s.a.lock();
        let _ = (g, h);
    }
}
";
        let fields = lock_field_names(src);
        let facts = scan_file("x", "x/src/lib.rs", src, &fields, &shared_data_field_names(src));
        assert!(facts.fns.is_empty(), "test fns must be skipped: {:?}", facts.fns);
    }

    #[test]
    fn sibling_data_fields_exclude_locks_and_atomics() {
        let src = "
pub struct S {
    hdr: parking_lot::Mutex<u32>,
    len: u32,
    hits: std::sync::atomic::AtomicU64,
}
pub struct NoLocks { plain: u32 }
";
        let data = shared_data_field_names(src);
        assert!(data.contains("len"), "plain sibling is a data field: {data:?}");
        assert!(!data.contains("hdr"), "lock fields are not data fields");
        assert!(!data.contains("hits"), "atomics synchronize themselves");
        assert!(!data.contains("plain"), "lock-free structs are out of scope");
    }

    #[test]
    fn accesses_record_write_kind_and_held_guards() {
        let src = "
pub struct S { hdr: parking_lot::Mutex<u32>, len: u32 }
impl S {
    fn covered(&self) {
        let g = self.hdr.lock();
        self.len = self.len + 1;
        drop(g);
    }
    fn bare(&self) -> u32 {
        self.len
    }
    fn exclusive(&mut self) {
        self.len = 0;
    }
}
";
        let fields = lock_field_names(src);
        let facts = scan_file("x", "x/src/lib.rs", src, &fields, &shared_data_field_names(src));
        let covered = facts.fns.iter().find(|f| f.name == "covered").unwrap();
        let (w, r): (Vec<_>, Vec<_>) = covered.accesses.iter().partition(|a| a.write);
        assert_eq!((w.len(), r.len()), (1, 1), "one write + one RHS read");
        assert!(w[0].held.iter().any(|(f, _)| f == "hdr"), "write holds hdr");
        let bare = facts.fns.iter().find(|f| f.name == "bare").unwrap();
        assert!(bare.accesses[0].held.is_empty() && !bare.accesses[0].write);
        let exclusive = facts.fns.iter().find(|f| f.name == "exclusive").unwrap();
        assert_eq!(exclusive.self_kind, SelfKind::RefMut, "&mut self detected");
    }

    #[test]
    fn guard_reads_writes_and_revalidation_are_tracked() {
        let src = "
pub struct F { state: parking_lot::Mutex<u32> }
impl F {
    fn gap(&self) {
        let snap = 0;
        {
            let st = self.state.lock();
            let _ = st.data;
        }
        let mut st = self.state.lock();
        st.dirty = false;
        let _ = snap;
    }
    fn fixed(&self, version: u32) {
        let mut st = self.state.lock();
        if st.version == version {
            st.dirty = false;
        }
    }
    fn counter(&self) {
        let mut st = self.state.lock();
        st.n += 1;
    }
}
";
        let fields = lock_field_names(src);
        let facts = scan_file("x", "x/src/lib.rs", src, &fields, &shared_data_field_names(src));
        let gap = facts.fns.iter().find(|f| f.name == "gap").unwrap();
        assert!(gap.acquisitions[0].reads && !gap.acquisitions[0].writes);
        assert!(gap.acquisitions[1].writes && !gap.acquisitions[1].revalidated);
        let fixed = facts.fns.iter().find(|f| f.name == "fixed").unwrap();
        assert!(fixed.acquisitions[0].writes && fixed.acquisitions[0].revalidated);
        let counter = facts.fns.iter().find(|f| f.name == "counter").unwrap();
        assert!(counter.acquisitions[0].revalidated, "compound assign re-reads");
    }

    #[test]
    fn sharded_acquisitions_encode_their_index() {
        let src = "
pub struct S { shards: OrderedShardedMutex<u32, 122> }
impl S {
    fn f(&self) {
        let g = self.shards.lock(3);
        let h = self.shards.lock(self.pick(7));
        let all = self.shards.lock_all();
        let _ = (*g, *h, all.len());
    }
}
";
        let fields = lock_field_names(src);
        assert!(fields.contains("shards"), "sharded mutex is a lock field");
        let facts = scan_file("x", "x/src/lib.rs", src, &fields, &shared_data_field_names(src));
        let names: Vec<&str> =
            facts.fns[0].acquisitions.iter().map(|a| a.field.as_str()).collect();
        assert_eq!(
            names,
            ["shards#3", "shards#?", "shards#*"],
            "literal index, computed index, and lock_all each get their own identity"
        );
    }

    #[test]
    fn lock_lo_counts_as_acquiring_lo() {
        let src = "
pub struct V { lo: OrderedMutex<u32, 30> }
impl V {
    fn take(&self, vn: &V) {
        let g = vn.lock_lo();
        let _ = g.status;
    }
}
";
        let fields = lock_field_names(src);
        let facts = scan_file("x", "x/src/lib.rs", src, &fields, &shared_data_field_names(src));
        let a = &facts.fns[0].acquisitions[0];
        assert_eq!((a.field.as_str(), a.receiver.as_str()), ("lo", "vn"));
        assert!(a.reads, "projection through the bound guard is a read");
    }

    #[test]
    fn guard_moved_into_helper_ends_liveness() {
        let src = "
pub struct F { state: parking_lot::Mutex<u32>, other: parking_lot::Mutex<u32> }
impl F {
    fn f(&self) {
        let g = self.state.lock();
        unlock_for_io(g);
        let h = self.other.lock();
        let _ = h;
    }
}
";
        let fields = lock_field_names(src);
        let facts = scan_file("x", "x/src/lib.rs", src, &fields, &shared_data_field_names(src));
        let a = facts.fns[0].acquisitions.iter().find(|a| a.field == "other").unwrap();
        assert!(a.held.is_empty(), "moved-out guard must not be held: {:?}", a.held);
    }
}
