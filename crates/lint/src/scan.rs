//! Single-file fact extraction: a hand-rolled Rust lexer plus pattern
//! walkers that pull out the lock-relevant facts of one source file.
//!
//! The lexer is deliberately tiny: it strips comments, strings, chars
//! and lifetimes while preserving line numbers, and emits a flat token
//! stream. Everything downstream pattern-matches on that stream — there
//! is no AST, so the walkers are conservative heuristics tuned for the
//! workspace's idiom (see the module doc in `lib.rs` for the precision
//! contract).

use crate::{Acquisition, Call, FieldDecl, FileFacts, FnFacts, RankExpr};
use std::collections::{HashMap, HashSet};

/// One lexical token with the 1-based source line it started on.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    Ident(String),
    Num(String),
    LBrace,
    RBrace,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Punct(char),
}

#[derive(Debug, Clone)]
pub struct Sp {
    pub tok: Tok,
    pub line: u32,
}

/// Methods that acquire a lock when invoked on a known lock field.
const ACQUIRE_METHODS: &[&str] = &["lock", "read", "write"];

/// Lock type names recognised in field declarations.
const LOCK_TYPES: &[&str] = &["Mutex", "RwLock", "OrderedMutex", "OrderedRwLock"];

/// Method/function names never treated as workspace calls. These are
/// overwhelmingly std collection/iterator/option methods; resolving
/// them by bare name against workspace functions (`get`, `insert`, …)
/// would fabricate call edges. The cost is missing a real workspace
/// call that shares one of these names — an acceptable recall loss for
/// the precision gain.
const CALL_STOPLIST: &[&str] = &[
    "len", "is_empty", "clone", "unwrap", "expect", "iter", "into_iter", "get", "get_mut",
    "insert", "remove", "push", "pop", "contains", "contains_key", "entry", "or_default",
    "or_insert", "or_insert_with", "map", "and_then", "then", "filter", "filter_map", "collect",
    "retain", "keys", "values", "values_mut", "iter_mut", "to_vec", "to_string", "into", "from",
    "as_ref", "as_mut", "as_str", "as_slice", "as_bytes", "cloned", "copied", "unwrap_or",
    "unwrap_or_else", "unwrap_or_default", "ok", "ok_or", "ok_or_else", "err", "min", "max",
    "min_by_key", "max_by_key", "drain", "extend", "sort", "sort_by", "sort_by_key", "position",
    "find", "any", "all", "count", "sum", "chain", "zip", "flatten", "flat_map", "rev", "take",
    "skip", "last", "first", "resize", "truncate", "clear", "starts_with", "ends_with", "split",
    "splitn", "trim", "parse", "fmt", "eq", "ne", "cmp", "partial_cmp", "hash", "next", "peek",
    "load", "store", "swap", "fetch_add", "fetch_sub", "compare_exchange", "join", "spawn",
    "sleep", "now", "elapsed", "abs", "saturating_add", "saturating_sub", "checked_add",
    "checked_sub", "wrapping_add", "is_some", "is_none", "is_ok", "is_err", "is_dir", "is_file",
    "to_owned", "as_deref", "take_while", "skip_while", "windows", "chunks", "concat",
    "copy_from_slice", "try_into", "try_from", "fill", "default", "replace", "get_or_insert_with",
    "min_by", "max_by", "step_by", "enumerate", "encode", "decode", "push_str", "repeat",
    // Generic verbs that name both std/io methods and unrelated
    // workspace functions (`disk.write(..)` must not resolve to a
    // client's `fn write` operation). Real lock acquisitions are
    // matched structurally before call detection, so stoplisting the
    // verbs here cannot hide an acquisition.
    "read", "write", "flush", "lock", "wait", "stats", "new",
];

/// Keywords that may be followed by `(` without being calls.
const KEYWORDS: &[&str] = &[
    "if", "else", "while", "match", "loop", "for", "in", "return", "break", "continue", "as",
    "let", "mut", "fn", "pub", "use", "mod", "impl", "trait", "struct", "enum", "const", "static",
    "type", "where", "move", "ref", "self", "Self", "super", "crate", "dyn", "unsafe", "async",
    "await", "true", "false",
];

pub fn lex(src: &str) -> Vec<Sp> {
    let b: Vec<char> = src.chars().collect();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let n = b.len();
    while i < n {
        let c = b[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < n && b[i + 1] == '/' => {
                while i < n && b[i] != '\n' {
                    i += 1;
                }
            }
            '/' if i + 1 < n && b[i + 1] == '*' => {
                let mut depth = 1;
                i += 2;
                while i < n && depth > 0 {
                    if b[i] == '\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            '"' => {
                i += 1;
                while i < n {
                    match b[i] {
                        '\\' => i += 2,
                        '\n' => {
                            line += 1;
                            i += 1;
                        }
                        '"' => {
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                }
            }
            '\'' => {
                // Lifetime (`'a`, `'static`) vs char literal (`'x'`,
                // `'\n'`): a char literal has exactly one unescaped char,
                // so `'X'` is a literal iff position i+2 is a quote.
                if i + 1 < n
                    && (b[i + 1].is_alphabetic() || b[i + 1] == '_')
                    && !(i + 2 < n && b[i + 2] == '\'')
                {
                    // Lifetime: skip the quote and the identifier.
                    i += 1;
                    while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                        i += 1;
                    }
                    continue;
                }
                i += 1;
                while i < n {
                    match b[i] {
                        '\\' => i += 2,
                        '\'' => {
                            i += 1;
                            break;
                        }
                        '\n' => {
                            line += 1;
                            i += 1;
                        }
                        _ => i += 1,
                    }
                }
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < n && (b[i].is_alphanumeric() || b[i] == '_' || b[i] == '.') {
                    // Stop a numeric literal before a method call (`0.lock()`
                    // is tuple-index style; `1.0` is a float — keep the
                    // common case simple: stop at `.` followed by non-digit).
                    if b[i] == '.' && (i + 1 >= n || !b[i + 1].is_ascii_digit()) {
                        break;
                    }
                    i += 1;
                }
                out.push(Sp { tok: Tok::Num(b[start..i].iter().collect()), line });
            }
            c if c.is_alphanumeric() || c == '_' => {
                let start = i;
                while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
                let ident: String = b[start..i].iter().collect();
                // Raw/byte string prefixes: r"..", r#".."#, b"..", br#".."#.
                if (ident == "r" || ident == "b" || ident == "br")
                    && i < n
                    && (b[i] == '"' || b[i] == '#')
                {
                    let mut hashes = 0;
                    while i < n && b[i] == '#' {
                        hashes += 1;
                        i += 1;
                    }
                    if i < n && b[i] == '"' {
                        i += 1;
                        'raw: while i < n {
                            if b[i] == '\n' {
                                line += 1;
                            }
                            if b[i] == '"' {
                                let mut h = 0;
                                while i + 1 + h < n && b[i + 1 + h] == '#' && h < hashes {
                                    h += 1;
                                }
                                if h == hashes {
                                    i += 1 + hashes;
                                    break 'raw;
                                }
                            }
                            i += 1;
                        }
                        continue;
                    }
                }
                out.push(Sp { tok: Tok::Ident(ident), line });
            }
            '{' => {
                out.push(Sp { tok: Tok::LBrace, line });
                i += 1;
            }
            '}' => {
                out.push(Sp { tok: Tok::RBrace, line });
                i += 1;
            }
            '(' => {
                out.push(Sp { tok: Tok::LParen, line });
                i += 1;
            }
            ')' => {
                out.push(Sp { tok: Tok::RParen, line });
                i += 1;
            }
            '[' => {
                out.push(Sp { tok: Tok::LBracket, line });
                i += 1;
            }
            ']' => {
                out.push(Sp { tok: Tok::RBracket, line });
                i += 1;
            }
            c => {
                out.push(Sp { tok: Tok::Punct(c), line });
                i += 1;
            }
        }
    }
    out
}

/// Extracts `// dfs-lint: allow(rule, ...)` annotations. Each maps to a
/// *target line*: the annotation's own line if it trails code, else the
/// next line that carries code (skipping blanks, other comments, and
/// attribute lines so an allow above `#[...]` still binds to the item).
pub fn collect_allows(src: &str) -> HashMap<u32, HashSet<String>> {
    let lines: Vec<&str> = src.lines().collect();
    let mut out: HashMap<u32, HashSet<String>> = HashMap::new();
    for (idx, raw) in lines.iter().enumerate() {
        let Some(pos) = raw.find("dfs-lint: allow(") else { continue };
        let Some(comment_pos) = raw.find("//") else { continue };
        if pos < comment_pos {
            continue; // "dfs-lint" outside a comment: not an annotation
        }
        let rest = &raw[pos + "dfs-lint: allow(".len()..];
        let Some(close) = rest.find(')') else { continue };
        let rules: Vec<String> = rest[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        let code_before = raw[..comment_pos].trim();
        let target = if !code_before.is_empty() {
            (idx + 1) as u32
        } else {
            // Find the next code-bearing line.
            let mut t = idx + 1;
            loop {
                if t >= lines.len() {
                    break (idx + 1) as u32;
                }
                let l = lines[t].trim();
                if l.is_empty() || l.starts_with("//") || l.starts_with("#[") || l.starts_with("#!") {
                    t += 1;
                } else {
                    break (t + 1) as u32;
                }
            }
        };
        out.entry(target).or_default().extend(rules);
    }
    out
}

/// Computes token-index ranges covered by `#[cfg(test)]` items (mods and
/// fns), which the fact walkers skip entirely.
fn cfg_test_ranges(ts: &[Sp]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i + 6 < ts.len() {
        let is_cfg_test = ts[i].tok == Tok::Punct('#')
            && ts[i + 1].tok == Tok::LBracket
            && ts[i + 2].tok == Tok::Ident("cfg".into())
            && ts[i + 3].tok == Tok::LParen
            && ts[i + 4].tok == Tok::Ident("test".into())
            && ts[i + 5].tok == Tok::RParen
            && ts[i + 6].tok == Tok::RBracket;
        if !is_cfg_test {
            i += 1;
            continue;
        }
        // Skip ahead to the item's opening brace and find its close.
        let mut j = i + 7;
        let mut depth = 0usize;
        let mut opened = false;
        while j < ts.len() {
            match ts[j].tok {
                Tok::LBrace => {
                    depth += 1;
                    opened = true;
                }
                Tok::RBrace => {
                    depth = depth.saturating_sub(1);
                    if opened && depth == 0 {
                        break;
                    }
                }
                Tok::Punct(';') if !opened => break, // `mod tests;` — nothing inline
                _ => {}
            }
            j += 1;
        }
        ranges.push((i, j));
        i = j + 1;
    }
    ranges
}

fn in_ranges(ranges: &[(usize, usize)], i: usize) -> bool {
    ranges.iter().any(|&(a, b)| i >= a && i <= b)
}

fn ident(ts: &[Sp], i: usize) -> Option<&str> {
    match ts.get(i).map(|s| &s.tok) {
        Some(Tok::Ident(s)) => Some(s),
        _ => None,
    }
}

fn is_punct(ts: &[Sp], i: usize, c: char) -> bool {
    matches!(ts.get(i).map(|s| &s.tok), Some(Tok::Punct(p)) if *p == c)
}

/// Matches a lock field declaration starting at token `i`.
fn field_decl_at(ts: &[Sp], i: usize) -> Option<FieldDecl> {
    let name = ident(ts, i)?;
    if !is_punct(ts, i + 1, ':') || is_punct(ts, i + 2, ':') {
        return None;
    }
    let mut j = i + 2;
    // Swallow a leading path (`parking_lot :: Mutex`).
    while ident(ts, j).is_some() && is_punct(ts, j + 1, ':') && is_punct(ts, j + 2, ':') {
        j += 3;
    }
    let ty = ident(ts, j)?;
    if !LOCK_TYPES.contains(&ty) || !is_punct(ts, j + 1, '<') {
        return None;
    }
    let rank = if ty.starts_with("Ordered") { parse_rank_expr(ts, j + 2) } else { None };
    Some(FieldDecl { name: name.to_string(), line: ts[i].line, rank })
}

/// Pre-pass: just the lock field *names* declared in `src`. The caller
/// unions these across a crate so acquisition detection sees fields
/// declared in sibling files (`journal/frame.rs` declares `state`;
/// `journal/lib.rs` acquires it).
pub fn lock_field_names(src: &str) -> HashSet<String> {
    let ts = lex(src);
    let skip = cfg_test_ranges(&ts);
    let mut out = HashSet::new();
    for i in 0..ts.len() {
        if in_ranges(&skip, i) {
            continue;
        }
        if let Some(d) = field_decl_at(&ts, i) {
            out.insert(d.name);
        }
    }
    out
}

/// Scans one file into facts. `crate_lock_fields` is the union of lock
/// field names declared anywhere in the same crate (see
/// [`lock_field_names`]).
pub fn scan_file(
    crate_name: &str,
    rel_path: &str,
    src: &str,
    crate_lock_fields: &HashSet<String>,
) -> FileFacts {
    let ts = lex(src);
    let allows = collect_allows(src);
    let skip = cfg_test_ranges(&ts);

    let mut facts = FileFacts {
        crate_name: crate_name.to_string(),
        path: rel_path.to_string(),
        fields: Vec::new(),
        rank_consts: HashMap::new(),
        fns: Vec::new(),
        std_sync_sites: Vec::new(),
        allows,
    };

    // --- flat pass: rank consts, std::sync sites, lock field decls ---
    let mut i = 0;
    while i < ts.len() {
        if in_ranges(&skip, i) {
            i += 1;
            continue;
        }
        // `const NAME: u16 = N ;`
        if ident(&ts, i) == Some("const")
            && ident(&ts, i + 3) == Some("u16")
            && is_punct(&ts, i + 2, ':')
            && is_punct(&ts, i + 4, '=')
        {
            if let (Some(name), Some(Tok::Num(v))) = (ident(&ts, i + 1), ts.get(i + 5).map(|s| &s.tok))
            {
                if let Ok(v) = v.replace('_', "").parse::<u16>() {
                    facts.rank_consts.insert(name.to_string(), v);
                }
            }
        }
        // `std :: sync :: {Mutex,RwLock,Condvar}` — rule (d)
        if ident(&ts, i) == Some("std")
            && is_punct(&ts, i + 1, ':')
            && is_punct(&ts, i + 2, ':')
            && ident(&ts, i + 3) == Some("sync")
            && is_punct(&ts, i + 4, ':')
            && is_punct(&ts, i + 5, ':')
        {
            if let Some(t) = ident(&ts, i + 6) {
                if matches!(t, "Mutex" | "RwLock" | "Condvar") {
                    facts.std_sync_sites.push((ts[i].line, t.to_string()));
                }
            }
        }
        // Lock field decl: `name : [path ::]* LockType <` — records the
        // field and, for Ordered* types, its rank expression.
        if let Some(d) = field_decl_at(&ts, i) {
            facts.fields.push(d);
        }
        i += 1;
    }

    // --- structural pass: functions ---
    let mut i = 0;
    while i < ts.len() {
        if in_ranges(&skip, i) {
            i += 1;
            continue;
        }
        if ident(&ts, i) == Some("fn") {
            if let Some(name) = ident(&ts, i + 1) {
                let fn_line = ts[i].line;
                // Find the body: first `{` at paren-depth 0, or `;` (no body).
                let mut j = i + 2;
                let mut paren = 0i32;
                let mut body_start = None;
                while j < ts.len() {
                    match ts[j].tok {
                        Tok::LParen | Tok::LBracket => paren += 1,
                        Tok::RParen | Tok::RBracket => paren -= 1,
                        Tok::LBrace if paren == 0 => {
                            body_start = Some(j);
                            break;
                        }
                        Tok::Punct(';') if paren == 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
                if let Some(bs) = body_start {
                    // Matching close brace.
                    let mut depth = 0usize;
                    let mut be = bs;
                    while be < ts.len() {
                        match ts[be].tok {
                            Tok::LBrace => depth += 1,
                            Tok::RBrace => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        be += 1;
                    }
                    let mut lock_fields: HashSet<&str> =
                        facts.fields.iter().map(|f| f.name.as_str()).collect();
                    lock_fields.extend(crate_lock_fields.iter().map(|s| s.as_str()));
                    let mut f = analyze_body(name, fn_line, &ts[bs..=be.min(ts.len() - 1)], &lock_fields);
                    if let Some(rules) = facts.allows.get(&fn_line) {
                        f.audited = rules.clone();
                    }
                    facts.fns.push(f);
                    i = be + 1;
                    continue;
                }
            }
        }
        i += 1;
    }

    facts
}

/// Parses the rank expression of `OrderedMutex<T, HERE>` starting just
/// inside the `<`. Recognises `{ rank :: NAME }`, `{ NAME }`, and a
/// literal `N` after the type parameter, scanning a bounded window.
fn parse_rank_expr(ts: &[Sp], start: usize) -> Option<RankExpr> {
    let mut depth = 1i32; // inside one `<`
    let mut j = start;
    let limit = (start + 64).min(ts.len());
    while j < limit && depth > 0 {
        match &ts[j].tok {
            Tok::Punct('<') => depth += 1,
            Tok::Punct('>') => depth -= 1,
            Tok::LBrace if depth == 1 => {
                if ident(ts, j + 1) == Some("rank")
                    && is_punct(ts, j + 2, ':')
                    && is_punct(ts, j + 3, ':')
                {
                    if let Some(name) = ident(ts, j + 4) {
                        return Some(RankExpr::Const(name.to_string()));
                    }
                }
                if let Some(Tok::Num(v)) = ts.get(j + 1).map(|s| &s.tok) {
                    if let Ok(v) = v.replace('_', "").parse::<u16>() {
                        return Some(RankExpr::Literal(v));
                    }
                }
                if let Some(name) = ident(ts, j + 1) {
                    if matches!(ts.get(j + 2).map(|s| &s.tok), Some(Tok::RBrace)) {
                        return Some(RankExpr::Const(name.to_string()));
                    }
                }
            }
            Tok::Punct(',') if depth == 1 => {
                if let Some(Tok::Num(v)) = ts.get(j + 1).map(|s| &s.tok) {
                    if let Ok(v) = v.replace('_', "").parse::<u16>() {
                        return Some(RankExpr::Literal(v));
                    }
                }
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// A guard live in some scope.
struct Guard {
    name: Option<String>,
    field: String,
    line: u32,
}

/// Walks one fn body tracking guard liveness per lexical scope.
fn analyze_body(name: &str, fn_line: u32, body: &[Sp], lock_fields: &HashSet<&str>) -> FnFacts {
    let mut f = FnFacts {
        name: name.to_string(),
        line: fn_line,
        acquisitions: Vec::new(),
        calls: Vec::new(),
        audited: HashSet::new(),
    };
    let mut scopes: Vec<Vec<Guard>> = vec![Vec::new()];
    // Per-statement binding state.
    let mut pending_binding: Option<String> = None;
    let mut binding_used = false;
    let mut value_projected = false; // `let x = *m.lock()` — x is not a guard
    let mut stmt_start = true;

    let held_fields = |scopes: &Vec<Vec<Guard>>| -> Vec<(String, u32)> {
        scopes
            .iter()
            .flat_map(|s| s.iter().map(|g| (g.field.clone(), g.line)))
            .collect()
    };

    let mut i = 0;
    while i < body.len() {
        match &body[i].tok {
            Tok::LBrace => {
                scopes.push(Vec::new());
                pending_binding = None;
                stmt_start = true;
                i += 1;
            }
            Tok::RBrace => {
                scopes.pop();
                if scopes.is_empty() {
                    scopes.push(Vec::new());
                }
                pending_binding = None;
                stmt_start = true;
                i += 1;
            }
            Tok::Punct(';') => {
                pending_binding = None;
                binding_used = false;
                value_projected = false;
                stmt_start = true;
                i += 1;
            }
            Tok::Ident(id) if id == "let" && stmt_start => {
                // `let [mut] NAME =` — only the immediate-`=` form binds.
                let mut j = i + 1;
                if ident(body, j) == Some("mut") {
                    j += 1;
                }
                if let Some(n) = ident(body, j) {
                    if is_punct(body, j + 1, '=') && !is_punct(body, j + 2, '=') {
                        pending_binding = Some(n.to_string());
                        binding_used = false;
                        value_projected = matches!(
                            body.get(j + 2).map(|s| &s.tok),
                            Some(Tok::Punct('*')) | Some(Tok::Punct('&'))
                        );
                        i = j + 2;
                        stmt_start = false;
                        continue;
                    }
                }
                stmt_start = false;
                i += 1;
            }
            Tok::Ident(id)
                if stmt_start
                    && is_punct(body, i + 1, '=')
                    && !is_punct(body, i + 2, '=')
                    && !KEYWORDS.contains(&id.as_str()) =>
            {
                // Re-assignment: `guard = field.lock();`
                pending_binding = Some(id.clone());
                binding_used = false;
                value_projected = matches!(
                    body.get(i + 2).map(|s| &s.tok),
                    Some(Tok::Punct('*')) | Some(Tok::Punct('&'))
                );
                stmt_start = false;
                i += 2;
            }
            Tok::Ident(id) if id == "drop" && matches!(body.get(i + 1).map(|s| &s.tok), Some(Tok::LParen)) => {
                if let Some(n) = ident(body, i + 2) {
                    if matches!(body.get(i + 3).map(|s| &s.tok), Some(Tok::RParen)) {
                        for s in scopes.iter_mut().rev() {
                            if let Some(pos) =
                                s.iter().rposition(|g| g.name.as_deref() == Some(n))
                            {
                                s.remove(pos);
                                break;
                            }
                        }
                        i += 4;
                        stmt_start = false;
                        continue;
                    }
                }
                i += 1;
                stmt_start = false;
            }
            Tok::Ident(m)
                if ACQUIRE_METHODS.contains(&m.as_str())
                    && is_punct(body, i.wrapping_sub(1), '.')
                    && matches!(body.get(i + 1).map(|s| &s.tok), Some(Tok::LParen))
                    && matches!(body.get(i + 2).map(|s| &s.tok), Some(Tok::RParen))
                    && ident(body, i.wrapping_sub(2))
                        .map(|f| lock_fields.contains(f))
                        .unwrap_or(false) =>
            {
                let field = ident(body, i - 2).unwrap().to_string();
                let line = body[i].line;
                f.acquisitions.push(Acquisition {
                    field: field.clone(),
                    line,
                    held: held_fields(&scopes),
                });
                // Guard binding: `let g = x.f.lock();` — the call result
                // must be the whole RHS (next token `;`) and not deref'd.
                let binds = pending_binding.is_some()
                    && !binding_used
                    && !value_projected
                    && is_punct(body, i + 3, ';');
                if binds {
                    binding_used = true;
                    let gname = pending_binding.clone();
                    scopes.last_mut().unwrap().push(Guard { name: gname, field, line });
                }
                i += 3;
                stmt_start = false;
            }
            Tok::Ident(callee)
                if matches!(body.get(i + 1).map(|s| &s.tok), Some(Tok::LParen))
                    && !KEYWORDS.contains(&callee.as_str())
                    && !CALL_STOPLIST.contains(&callee.as_str())
                    && !callee.chars().next().map(char::is_uppercase).unwrap_or(true)
                    // `Path::assoc(..)` calls don't resolve by bare name:
                    // the path names a type, not a workspace function.
                    && !is_punct(body, i.wrapping_sub(1), ':') =>
            {
                // Method or free-fn call. Build a receiver hint from the
                // dotted path immediately before the name.
                let mut recv = String::new();
                if is_punct(body, i.wrapping_sub(1), '.') {
                    let mut k = i - 1;
                    let mut parts: Vec<String> = Vec::new();
                    while k >= 1 {
                        if let Some(p) = ident(body, k - 1) {
                            if is_punct(body, k, '.') {
                                parts.push(p.to_string());
                                if k < 2 {
                                    break;
                                }
                                k -= 2;
                                continue;
                            }
                        }
                        break;
                    }
                    parts.reverse();
                    recv = parts.join(".");
                }
                let direct_rpc = callee == "call" && recv.contains("net");
                f.calls.push(Call {
                    callee: callee.clone(),
                    line: body[i].line,
                    held: held_fields(&scopes),
                    receiver: recv,
                    direct_rpc,
                });
                i += 1;
                stmt_start = false;
            }
            Tok::Ident(_) | Tok::Num(_) => {
                stmt_start = false;
                i += 1;
            }
            _ => {
                i += 1;
            }
        }
    }
    f
}

/// True if `name` is on the call stoplist (exposed for tests).
pub fn stoplisted(name: &str) -> bool {
    CALL_STOPLIST.contains(&name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter_map(|s| match s.tok {
                Tok::Ident(i) => Some(i),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn lexer_strips_strings_comments_and_lifetimes() {
        let src = r##"
            // line comment with lock()
            /* block /* nested */ still comment */
            let s = "a.lock()"; let r = r#"raw.lock()"#;
            fn f<'a>(x: &'a str) -> char { 'x' }
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"lock".to_string()));
        // the lifetime 'a must not eat the following tokens
        assert!(ids.contains(&"str".to_string()));
        assert!(ids.contains(&"char".to_string()));
    }

    #[test]
    fn lexer_distinguishes_char_literal_from_lifetime() {
        // 'x' is a char literal; 'a in <'a> is a lifetime. Both must
        // leave the surrounding identifiers intact.
        let ids = idents("let c = 'x'; struct S<'a> { f: &'a u8 }");
        assert!(ids.contains(&"struct".to_string()));
        assert!(ids.contains(&"u8".to_string()));
        assert!(!ids.contains(&"x".to_string()));
    }

    #[test]
    fn lexer_tracks_lines_across_multiline_comments() {
        let ts = lex("/* one\ntwo\nthree */ marker");
        assert_eq!(ts.len(), 1);
        assert_eq!(ts[0].line, 3);
    }

    #[test]
    fn allow_on_own_line_targets_next_code_line_skipping_attrs() {
        let src = "\n// dfs-lint: allow(guard-across-rpc)\n#[inline]\nfn f() {}\n";
        let allows = collect_allows(src);
        // comment on line 2, attribute on line 3, code on line 4
        assert!(allows.get(&4).is_some_and(|s| s.contains("guard-across-rpc")));
        assert!(!allows.contains_key(&3));
    }

    #[test]
    fn trailing_allow_targets_its_own_line() {
        let src = "fn f() {} // dfs-lint: allow(lock-order, double-lock)\n";
        let allows = collect_allows(src);
        let set = allows.get(&1).expect("line 1 annotated");
        assert!(set.contains("lock-order") && set.contains("double-lock"));
    }

    #[test]
    fn drop_ends_guard_liveness() {
        let src = "
pub struct S { a: parking_lot::Mutex<u32>, b: parking_lot::Mutex<u32> }
impl S {
    fn f(&self) {
        let g = self.b.lock();
        drop(g);
        let h = self.a.lock();
        let _ = h;
    }
}
";
        let fields = lock_field_names(src);
        let facts = scan_file("x", "x/src/lib.rs", src, &fields);
        let f = &facts.fns[0];
        let a = f.acquisitions.iter().find(|a| a.field == "a").unwrap();
        assert!(a.held.is_empty(), "drop(g) must release b: {:?}", a.held);
    }

    #[test]
    fn statement_temporary_is_not_a_live_guard() {
        let src = "
pub struct S { a: parking_lot::Mutex<u32>, b: parking_lot::Mutex<u32> }
impl S {
    fn f(&self) {
        *self.b.lock() += 1;
        let h = self.a.lock();
        let _ = h;
    }
}
";
        let fields = lock_field_names(src);
        let facts = scan_file("x", "x/src/lib.rs", src, &fields);
        let a = facts.fns[0].acquisitions.iter().find(|a| a.field == "a").unwrap();
        assert!(a.held.is_empty(), "temporary must not be held: {:?}", a.held);
    }

    #[test]
    fn cfg_test_modules_are_skipped() {
        let src = "
pub struct S { a: parking_lot::Mutex<u32> }
#[cfg(test)]
mod tests {
    fn f(s: &super::S) {
        let g = s.a.lock();
        let h = s.a.lock();
        let _ = (g, h);
    }
}
";
        let fields = lock_field_names(src);
        let facts = scan_file("x", "x/src/lib.rs", src, &fields);
        assert!(facts.fns.is_empty(), "test fns must be skipped: {:?}", facts.fns);
    }
}
