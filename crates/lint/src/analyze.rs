//! Whole-workspace analysis over per-file facts: inter-procedural
//! lock-order graph construction and rule evaluation.

use crate::{Diagnostic, FileFacts, RankExpr};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// A lock identity: `(crate, field name)`. Field names are assumed
/// unique per crate among *lock* fields — a collision would merge two
/// locks into one node, which over-approximates (may report a spurious
/// order) but never hides a real one within either field.
pub type FieldKey = (String, String);

struct FieldInfo {
    rank: Option<u16>,
    exempt: HashSet<String>,
}

struct FnRef {
    file: usize,
    func: usize,
}

#[derive(Clone)]
struct Edge {
    from: FieldKey,
    to: FieldKey,
    path: String,
    line: u32,
    via: Option<String>,
}

pub fn analyze(files: &[FileFacts]) -> Vec<Diagnostic> {
    // ---- global tables ----
    let mut rank_consts: HashMap<String, u16> = HashMap::new();
    for f in files {
        rank_consts.extend(f.rank_consts.iter().map(|(k, v)| (k.clone(), *v)));
    }

    let mut fields: HashMap<FieldKey, FieldInfo> = HashMap::new();
    for f in files {
        for d in &f.fields {
            let key = (f.crate_name.clone(), d.name.clone());
            let rank = match &d.rank {
                Some(RankExpr::Literal(v)) => Some(*v),
                Some(RankExpr::Const(name)) => rank_consts.get(name).copied(),
                None => None,
            };
            let exempt = f.allows.get(&d.line).cloned().unwrap_or_default();
            let info = fields.entry(key).or_insert(FieldInfo { rank: None, exempt: HashSet::new() });
            if info.rank.is_none() {
                info.rank = rank;
            }
            info.exempt.extend(exempt);
        }
    }

    let mut fns: Vec<FnRef> = Vec::new();
    let mut by_name: HashMap<&str, Vec<usize>> = HashMap::new();
    for (fi, f) in files.iter().enumerate() {
        for (gi, g) in f.fns.iter().enumerate() {
            by_name.entry(g.name.as_str()).or_default().push(fns.len());
            fns.push(FnRef { file: fi, func: gi });
        }
    }

    // Nearest-definition call resolution. Calls on `self` (or free
    // calls) prefer the same file, then the same crate, then the whole
    // workspace. Calls through any other receiver (`self.vldb.lookup`,
    // `tm.grant`) are dispatched on some *other* object, so the current
    // file is excluded — otherwise a client's `self.vldb.lookup(..)`
    // resolves to the client's own `fn lookup` file operation.
    let resolve = |caller_file: usize, callee: &str, receiver: &str| -> Vec<usize> {
        let Some(cands) = by_name.get(callee) else { return Vec::new() };
        let on_self = receiver.is_empty() || receiver == "self";
        if on_self {
            let same_file: Vec<usize> =
                cands.iter().copied().filter(|&i| fns[i].file == caller_file).collect();
            if !same_file.is_empty() {
                return same_file;
            }
        }
        let crate_name = &files[caller_file].crate_name;
        let same_crate: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&i| {
                &files[fns[i].file].crate_name == crate_name
                    && (on_self || fns[i].file != caller_file)
            })
            .collect();
        if !same_crate.is_empty() {
            return same_crate;
        }
        cands.iter().copied().filter(|&i| on_self || fns[i].file != caller_file).collect()
    };

    let audited = |i: usize, rule: &str| -> bool {
        files[fns[i].file].fns[fns[i].func].audited.contains(rule)
    };

    // ---- fixpoint: transitive acquisitions + rpc-sender propagation ----
    let mut reach: Vec<HashSet<FieldKey>> = Vec::with_capacity(fns.len());
    let mut sends: Vec<bool> = Vec::with_capacity(fns.len());
    for r in &fns {
        let f = &files[r.file];
        let mut acq = HashSet::new();
        for a in &f.fns[r.func].acquisitions {
            acq.insert((f.crate_name.clone(), a.field.clone()));
        }
        reach.push(acq);
        let direct = f.fns[r.func].calls.iter().any(|c| c.direct_rpc);
        sends.push(direct);
    }
    let mut changed = true;
    let mut rounds = 0;
    while changed && rounds < 1000 {
        changed = false;
        rounds += 1;
        for i in 0..fns.len() {
            let r = &fns[i];
            let calls: Vec<(String, String)> = files[r.file].fns[r.func]
                .calls
                .iter()
                .map(|c| (c.callee.clone(), c.receiver.clone()))
                .collect();
            for (callee, receiver) in &calls {
                for g in resolve(r.file, callee, receiver) {
                    if g == i {
                        continue;
                    }
                    let add: Vec<FieldKey> =
                        reach[g].iter().filter(|k| !reach[i].contains(*k)).cloned().collect();
                    if !add.is_empty() {
                        reach[i].extend(add);
                        changed = true;
                    }
                    if sends[g] && !audited(g, "guard-across-rpc") && !sends[i] {
                        sends[i] = true;
                        changed = true;
                    }
                }
            }
        }
    }

    // ---- edge collection ----
    let allowed = |file: usize, line: u32, rule: &str| -> bool {
        files[file].allows.get(&line).map(|r| r.contains(rule)).unwrap_or(false)
    };
    let exempt_field = |k: &FieldKey, rule: &str| -> bool {
        fields.get(k).map(|f| f.exempt.contains(rule)).unwrap_or(false)
    };

    let mut edges: Vec<Edge> = Vec::new();
    let mut diags: Vec<Diagnostic> = Vec::new();

    for (fi, f) in files.iter().enumerate() {
        for func in &f.fns {
            for a in &func.acquisitions {
                let to = (f.crate_name.clone(), a.field.clone());
                for (h, hline) in &a.held {
                    let from = (f.crate_name.clone(), h.clone());
                    if from == to {
                        // Rule (c): double acquisition of one field while
                        // its own guard is still live.
                        if !allowed(fi, a.line, "double-lock")
                            && !exempt_field(&to, "double-lock")
                        {
                            diags.push(Diagnostic {
                                path: f.path.clone(),
                                line: a.line,
                                rule: "double-lock".into(),
                                message: format!(
                                    "`{}` re-acquired while its guard from line {} is still live \
                                     (self-deadlock with a non-reentrant lock)",
                                    a.field, hline
                                ),
                            });
                        }
                        continue;
                    }
                    edges.push(Edge {
                        from,
                        to: to.clone(),
                        path: f.path.clone(),
                        line: a.line,
                        via: None,
                    });
                }
            }
            for c in &func.calls {
                if c.held.is_empty() {
                    continue;
                }
                // Rule (b): guard live across `TokenHost::revoke`.
                let live: Vec<&(String, u32)> = c
                    .held
                    .iter()
                    .filter(|(h, _)| {
                        !exempt_field(&(f.crate_name.clone(), h.clone()), "guard-across-revoke")
                    })
                    .collect();
                if c.callee == "revoke"
                    && !live.is_empty()
                    && !func.audited.contains("guard-across-revoke")
                    && !allowed(fi, c.line, "guard-across-revoke")
                {
                    diags.push(Diagnostic {
                        path: f.path.clone(),
                        line: c.line,
                        rule: "guard-across-revoke".into(),
                        message: format!(
                            "guard on `{}` (line {}) held across TokenHost::revoke; §5.1/§6.4 \
                             require revocation to be issued with no locks held",
                            live[0].0, live[0].1
                        ),
                    });
                }
                // Rule (b'): guard live across a dfs-rpc send.
                let live_rpc: Vec<&(String, u32)> = c
                    .held
                    .iter()
                    .filter(|(h, _)| {
                        !exempt_field(&(f.crate_name.clone(), h.clone()), "guard-across-rpc")
                    })
                    .collect();
                if !live_rpc.is_empty()
                    && !func.audited.contains("guard-across-rpc")
                    && !allowed(fi, c.line, "guard-across-rpc")
                {
                    let transitively_sends = || {
                        resolve(fi, &c.callee, &c.receiver)
                            .into_iter()
                            .any(|g| sends[g] && !audited(g, "guard-across-rpc"))
                    };
                    if c.direct_rpc || transitively_sends() {
                        diags.push(Diagnostic {
                            path: f.path.clone(),
                            line: c.line,
                            rule: "guard-across-rpc".into(),
                            message: format!(
                                "guard on `{}` (line {}) held across {}; the peer's reply can \
                                 block on a revocation that needs this lock (§5.1/§6.4)",
                                live_rpc[0].0,
                                live_rpc[0].1,
                                if c.direct_rpc {
                                    "a dfs-rpc send".to_string()
                                } else {
                                    format!("`{}`, which sends dfs-rpc", c.callee)
                                }
                            ),
                        });
                    }
                }
                // Interprocedural lock-order edges.
                for g in resolve(fi, &c.callee, &c.receiver) {
                    for to in &reach[g] {
                        for (h, _) in &c.held {
                            let from = (f.crate_name.clone(), h.clone());
                            if &from == to {
                                // Same lock reached through a call: almost
                                // always the recursion artifact of nearest-
                                // definition resolution, not a real
                                // re-entry; covered dynamically instead.
                                continue;
                            }
                            edges.push(Edge {
                                from,
                                to: to.clone(),
                                path: f.path.clone(),
                                line: c.line,
                                via: Some(c.callee.clone()),
                            });
                        }
                    }
                }
            }
        }
    }

    // ---- rule (a): rank inversions on edges ----
    for e in &edges {
        let (Some(fa), Some(fb)) = (fields.get(&e.from), fields.get(&e.to)) else { continue };
        if fa.exempt.contains("lock-order") || fb.exempt.contains("lock-order") {
            continue;
        }
        let (Some(ra), Some(rb)) = (fa.rank, fb.rank) else { continue };
        let fi = files.iter().position(|f| f.path == e.path).unwrap_or(0);
        if allowed(fi, e.line, "lock-order") {
            continue;
        }
        let via = e.via.as_ref().map(|v| format!(" via `{v}`")).unwrap_or_default();
        if rb < ra {
            diags.push(Diagnostic {
                path: e.path.clone(),
                line: e.line,
                rule: "lock-order".into(),
                message: format!(
                    "acquiring `{}` (rank {}) while holding `{}` (rank {}){} inverts the \
                     declared hierarchy",
                    e.to.1, rb, e.from.1, ra, via
                ),
            });
        } else if rb == ra {
            diags.push(Diagnostic {
                path: e.path.clone(),
                line: e.line,
                rule: "lock-order".into(),
                message: format!(
                    "acquiring `{}` while holding `{}`{} — both rank {}; same-rank locks must \
                     never nest",
                    e.to.1, e.from.1, via, ra
                ),
            });
        }
    }

    // ---- rule (a): cycles involving unranked locks ----
    // Ranked-field cycles necessarily contain a rank inversion and are
    // already reported above; here we catch A→B / B→A orderings among
    // locks with no declared rank.
    let mut adj: BTreeMap<&FieldKey, BTreeSet<&FieldKey>> = BTreeMap::new();
    for e in &edges {
        adj.entry(&e.from).or_default().insert(&e.to);
    }
    let reachable = |from: &FieldKey, to: &FieldKey| -> bool {
        let mut seen: BTreeSet<&FieldKey> = BTreeSet::new();
        let mut stack = vec![from];
        while let Some(k) = stack.pop() {
            if k == to {
                return true;
            }
            if let Some(next) = adj.get(k) {
                for n in next {
                    if seen.insert(n) {
                        stack.push(n);
                    }
                }
            }
        }
        false
    };
    let ranked = |k: &FieldKey| fields.get(k).and_then(|f| f.rank).is_some();
    let mut reported: BTreeSet<(FieldKey, FieldKey)> = BTreeSet::new();
    for e in &edges {
        if e.from == e.to {
            continue;
        }
        if ranked(&e.from) && ranked(&e.to) {
            continue;
        }
        if fields.get(&e.from).map(|f| f.exempt.contains("lock-order")).unwrap_or(false)
            || fields.get(&e.to).map(|f| f.exempt.contains("lock-order")).unwrap_or(false)
        {
            continue;
        }
        let pair = if e.from <= e.to {
            (e.from.clone(), e.to.clone())
        } else {
            (e.to.clone(), e.from.clone())
        };
        if reported.contains(&pair) {
            continue;
        }
        if reachable(&e.to, &e.from) {
            let fi = files.iter().position(|f| f.path == e.path).unwrap_or(0);
            if allowed(fi, e.line, "lock-order") {
                continue;
            }
            reported.insert(pair);
            let via = e.via.as_ref().map(|v| format!(" via `{v}`")).unwrap_or_default();
            diags.push(Diagnostic {
                path: e.path.clone(),
                line: e.line,
                rule: "lock-order".into(),
                message: format!(
                    "lock-order cycle: `{}.{}` acquired while holding `{}.{}`{}, but another \
                     path acquires them in the opposite order",
                    e.to.0, e.to.1, e.from.0, e.from.1, via
                ),
            });
        }
    }

    // ---- rule (d): std::sync locks ----
    for (fi, f) in files.iter().enumerate() {
        for (line, ty) in &f.std_sync_sites {
            if allowed(fi, *line, "std-sync") {
                continue;
            }
            diags.push(Diagnostic {
                path: f.path.clone(),
                line: *line,
                rule: "std-sync".into(),
                message: format!(
                    "std::sync::{ty} in non-test code; use parking_lot via \
                     dfs_types::lock::Ordered{ty} so the rank enforcer sees it"
                ),
            });
        }
    }

    diags.sort();
    diags.dedup();
    diags
}
