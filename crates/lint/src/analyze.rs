//! Whole-workspace analysis over per-file facts: inter-procedural
//! lock-order graph construction and rule evaluation.
//!
//! Every rule here is evaluated *violation-first*: the analysis decides
//! that a site would be reported before it consults any suppression.
//! A suppression that actually fires is recorded as used; the
//! `unused-allow` pass at the end turns every annotation that never
//! fired into a diagnostic of its own, so stale `allow(...)` comments
//! cannot silently mask future regressions.

use crate::{lockgap, lockset, Diagnostic, FileFacts, RankExpr};
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// A lock identity: `(crate, field name)`. Field names are assumed
/// unique per crate among *lock* fields — a collision would merge two
/// locks into one node, which over-approximates (may report a spurious
/// order) but never hides a real one within either field.
pub type FieldKey = (String, String);

/// Every rule name the suppression syntax accepts.
pub const RULES: [&str; 9] = [
    "lock-order",
    "guard-across-revoke",
    "guard-across-rpc",
    "double-lock",
    "std-sync",
    "lockset",
    "lock-gap",
    "shard-order",
    "unused-allow",
];

/// Strips the shard suffix a sharded acquisition carries (`shards#3`,
/// `shards#?`, `shards#*`) back to the declared field name, which is
/// what the rank/exemption tables are keyed by.
fn base(name: &str) -> &str {
    name.split('#').next().unwrap_or(name)
}

/// The shard index of an acquisition name, when it has one.
enum ShardIdx {
    /// Not a sharded acquisition.
    None,
    /// `field#N` — a literal index, statically comparable.
    Lit(u64),
    /// `field#?` — a computed index; runtime `acquire_indexed` judges it.
    Dyn,
    /// `field#*` — `lock_all`, which holds every shard.
    All,
}

fn shard_idx(name: &str) -> ShardIdx {
    match name.split_once('#') {
        None => ShardIdx::None,
        Some((_, "?")) => ShardIdx::Dyn,
        Some((_, "*")) => ShardIdx::All,
        Some((_, n)) => n.parse().map(ShardIdx::Lit).unwrap_or(ShardIdx::Dyn),
    }
}

struct FieldInfo {
    rank: Option<u16>,
    exempt: HashSet<String>,
    /// Declaration sites `(file, line)` — where the exempting allows
    /// live, so their use can be credited.
    decls: Vec<(usize, u32)>,
}

struct FnRef {
    file: usize,
    func: usize,
}

#[derive(Clone)]
struct Edge {
    from: FieldKey,
    to: FieldKey,
    file: usize,
    line: u32,
    via: Option<String>,
}

pub fn analyze(files: &[FileFacts]) -> Vec<Diagnostic> {
    // ---- global tables ----
    let mut rank_consts: HashMap<String, u16> = HashMap::new();
    for f in files {
        rank_consts.extend(f.rank_consts.iter().map(|(k, v)| (k.clone(), *v)));
    }

    let mut fields: HashMap<FieldKey, FieldInfo> = HashMap::new();
    for (fi, f) in files.iter().enumerate() {
        for d in &f.fields {
            let key = (f.crate_name.clone(), d.name.clone());
            let rank = match &d.rank {
                Some(RankExpr::Literal(v)) => Some(*v),
                Some(RankExpr::Const(name)) => rank_consts.get(name).copied(),
                None => None,
            };
            let exempt = f.allows.get(&d.line).cloned().unwrap_or_default();
            let info = fields
                .entry(key)
                .or_insert(FieldInfo { rank: None, exempt: HashSet::new(), decls: Vec::new() });
            if info.rank.is_none() {
                info.rank = rank;
            }
            info.exempt.extend(exempt);
            info.decls.push((fi, d.line));
        }
    }

    let mut fns: Vec<FnRef> = Vec::new();
    let mut by_name: HashMap<&str, Vec<usize>> = HashMap::new();
    for (fi, f) in files.iter().enumerate() {
        for (gi, g) in f.fns.iter().enumerate() {
            by_name.entry(g.name.as_str()).or_default().push(fns.len());
            fns.push(FnRef { file: fi, func: gi });
        }
    }

    // Nearest-definition call resolution. Calls on `self` (or free
    // calls) prefer the same file, then the same crate, then the whole
    // workspace. Calls through any other receiver (`self.vldb.lookup`,
    // `tm.grant`) are dispatched on some *other* object, so the current
    // file is excluded — otherwise a client's `self.vldb.lookup(..)`
    // resolves to the client's own `fn lookup` file operation.
    let resolve = |caller_file: usize, callee: &str, receiver: &str| -> Vec<usize> {
        let Some(cands) = by_name.get(callee) else { return Vec::new() };
        let on_self = receiver.is_empty() || receiver == "self";
        if on_self {
            let same_file: Vec<usize> =
                cands.iter().copied().filter(|&i| fns[i].file == caller_file).collect();
            if !same_file.is_empty() {
                return same_file;
            }
        }
        let crate_name = &files[caller_file].crate_name;
        let same_crate: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&i| {
                &files[fns[i].file].crate_name == crate_name
                    && (on_self || fns[i].file != caller_file)
            })
            .collect();
        if !same_crate.is_empty() {
            return same_crate;
        }
        cands.iter().copied().filter(|&i| on_self || fns[i].file != caller_file).collect()
    };

    let audited = |i: usize, rule: &str| -> bool {
        files[fns[i].file].fns[fns[i].func].audited.contains(rule)
    };

    // ---- suppression usage ledger ----
    // `(file, line, rule)` of every allow annotation that suppressed (or
    // would have suppressed) a concrete violation. The checks below are
    // only ever consulted once a violation has been established, so
    // "consulted and present" is exactly "load-bearing".
    let used: RefCell<HashSet<(usize, u32, String)>> = RefCell::new(HashSet::new());
    let suppressed_at = |file: usize, line: u32, rule: &str| -> bool {
        if files[file].allows.get(&line).map(|r| r.contains(rule)).unwrap_or(false) {
            used.borrow_mut().insert((file, line, rule.to_string()));
            true
        } else {
            false
        }
    };
    let exempt_field = |k: &FieldKey, rule: &str| -> bool {
        let Some(info) = fields.get(&(k.0.clone(), base(&k.1).to_string())) else { return false };
        if !info.exempt.contains(rule) {
            return false;
        }
        let mut u = used.borrow_mut();
        for (df, dl) in &info.decls {
            if files[*df].allows.get(dl).map(|r| r.contains(rule)).unwrap_or(false) {
                u.insert((*df, *dl, rule.to_string()));
            }
        }
        true
    };
    let audit_used = |i: usize, rule: &str| {
        let r = &fns[i];
        used.borrow_mut().insert((r.file, files[r.file].fns[r.func].line, rule.to_string()));
    };

    // ---- fixpoint: transitive acquisitions + rpc-sender propagation ----
    // `sends` stops propagating at audited functions (their callers are
    // vouched for); `sends_raw` ignores audits and exists only to judge
    // whether each audit is load-bearing.
    let mut reach: Vec<HashSet<FieldKey>> = Vec::with_capacity(fns.len());
    let mut sends: Vec<bool> = Vec::with_capacity(fns.len());
    for r in &fns {
        let f = &files[r.file];
        let mut acq = HashSet::new();
        for a in &f.fns[r.func].acquisitions {
            acq.insert((f.crate_name.clone(), a.field.clone()));
        }
        reach.push(acq);
        let direct = f.fns[r.func].calls.iter().any(|c| c.direct_rpc);
        sends.push(direct);
    }
    let mut sends_raw = sends.clone();
    let mut changed = true;
    let mut rounds = 0;
    while changed && rounds < 1000 {
        changed = false;
        rounds += 1;
        for i in 0..fns.len() {
            let r = &fns[i];
            let calls: Vec<(String, String)> = files[r.file].fns[r.func]
                .calls
                .iter()
                .map(|c| (c.callee.clone(), c.receiver.clone()))
                .collect();
            for (callee, receiver) in &calls {
                for g in resolve(r.file, callee, receiver) {
                    if g == i {
                        continue;
                    }
                    let add: Vec<FieldKey> =
                        reach[g].iter().filter(|k| !reach[i].contains(*k)).cloned().collect();
                    if !add.is_empty() {
                        reach[i].extend(add);
                        changed = true;
                    }
                    if sends[g] && !audited(g, "guard-across-rpc") && !sends[i] {
                        sends[i] = true;
                        changed = true;
                    }
                    if sends_raw[g] && !sends_raw[i] {
                        sends_raw[i] = true;
                        changed = true;
                    }
                }
            }
        }
    }
    // An rpc audit earns its keep iff the function actually sends
    // (directly or transitively): the annotation is then what keeps the
    // sender from tainting every caller.
    for (i, raw) in sends_raw.iter().enumerate() {
        if *raw && audited(i, "guard-across-rpc") {
            audit_used(i, "guard-across-rpc");
        }
    }

    // ---- helper tables for the lockset fixpoint ----
    let fns_pairs: Vec<(usize, usize)> = fns.iter().map(|r| (r.file, r.func)).collect();
    let resolved: Vec<Vec<Vec<usize>>> = fns
        .iter()
        .map(|r| {
            files[r.file].fns[r.func]
                .calls
                .iter()
                .map(|c| resolve(r.file, &c.callee, &c.receiver))
                .collect()
        })
        .collect();

    // ---- edge collection + per-call rules ----
    let mut edges: Vec<Edge> = Vec::new();
    let mut diags: Vec<Diagnostic> = Vec::new();

    for (fi, f) in files.iter().enumerate() {
        for func in &f.fns {
            for a in &func.acquisitions {
                let to = (f.crate_name.clone(), a.field.clone());
                for (h, hline) in &a.held {
                    let from = (f.crate_name.clone(), h.clone());
                    if from == to && !h.contains('#') {
                        // Rule (c): double acquisition of one field while
                        // its own guard is still live.
                        let line_ok = suppressed_at(fi, a.line, "double-lock");
                        let field_ok = exempt_field(&to, "double-lock");
                        if !line_ok && !field_ok {
                            diags.push(Diagnostic {
                                path: f.path.clone(),
                                line: a.line,
                                rule: "double-lock".into(),
                                message: format!(
                                    "`{}` re-acquired while its guard from line {} is still live \
                                     (self-deadlock with a non-reentrant lock)",
                                    a.field, hline
                                ),
                            });
                        }
                        continue;
                    }
                    if base(h) == base(&a.field) && h.contains('#') {
                        // Rule (h): same-field shard nesting. The sharded
                        // mutex's only legal multi-shard pattern is
                        // strictly ascending indices; `lock_all` already
                        // holds every shard, so overlapping it with any
                        // same-field acquisition self-deadlocks. Computed
                        // indices are deferred to the runtime enforcer.
                        let message = match (shard_idx(h), shard_idx(&a.field)) {
                            (ShardIdx::Dyn, _) | (_, ShardIdx::Dyn) => None,
                            (ShardIdx::All, _) | (_, ShardIdx::All) => Some(format!(
                                "acquiring `{}` while `{}` (line {}) holds every shard; a \
                                 lock_all guard must never overlap another acquisition of the \
                                 same sharded lock (self-deadlock)",
                                a.field, h, hline
                            )),
                            (ShardIdx::Lit(x), ShardIdx::Lit(y)) if y <= x => Some(format!(
                                "acquiring shard {} of `{}` while shard {} (line {}) is held; \
                                 same-field shards must be acquired in strictly ascending index \
                                 order",
                                y,
                                base(&a.field),
                                x,
                                hline
                            )),
                            _ => None,
                        };
                        if let Some(message) = message {
                            if !exempt_field(&to, "shard-order")
                                && !suppressed_at(fi, a.line, "shard-order")
                            {
                                diags.push(Diagnostic {
                                    path: f.path.clone(),
                                    line: a.line,
                                    rule: "shard-order".into(),
                                    message,
                                });
                            }
                        }
                        continue;
                    }
                    edges.push(Edge {
                        from,
                        to: to.clone(),
                        file: fi,
                        line: a.line,
                        via: None,
                    });
                }
            }
            for c in &func.calls {
                if c.held.is_empty() {
                    continue;
                }
                // Rule (b): guard live across `TokenHost::revoke` (or
                // its batched sibling `revoke_batch` — same §5.1
                // requirement, one callback for many tokens).
                if c.callee == "revoke" || c.callee == "revoke_batch" {
                    let live: Vec<&(String, u32)> = c
                        .held
                        .iter()
                        .filter(|(h, _)| {
                            !exempt_field(
                                &(f.crate_name.clone(), h.clone()),
                                "guard-across-revoke",
                            )
                        })
                        .collect();
                    if !live.is_empty() {
                        if func.audited.contains("guard-across-revoke") {
                            used.borrow_mut().insert((
                                fi,
                                func.line,
                                "guard-across-revoke".to_string(),
                            ));
                        } else if !suppressed_at(fi, c.line, "guard-across-revoke") {
                            diags.push(Diagnostic {
                                path: f.path.clone(),
                                line: c.line,
                                rule: "guard-across-revoke".into(),
                                message: format!(
                                    "guard on `{}` (line {}) held across TokenHost::{}; \
                                     §5.1/§6.4 require revocation to be issued with no locks held",
                                    live[0].0, live[0].1, c.callee
                                ),
                            });
                        }
                    }
                }
                // Rule (b'): guard live across a dfs-rpc send.
                let sends_here = c.direct_rpc
                    || resolve(fi, &c.callee, &c.receiver)
                        .into_iter()
                        .any(|g| sends[g] && !audited(g, "guard-across-rpc"));
                if sends_here {
                    let live_rpc: Vec<&(String, u32)> = c
                        .held
                        .iter()
                        .filter(|(h, _)| {
                            !exempt_field(&(f.crate_name.clone(), h.clone()), "guard-across-rpc")
                        })
                        .collect();
                    if !live_rpc.is_empty() {
                        if func.audited.contains("guard-across-rpc") {
                            used.borrow_mut().insert((
                                fi,
                                func.line,
                                "guard-across-rpc".to_string(),
                            ));
                        } else if !suppressed_at(fi, c.line, "guard-across-rpc") {
                            diags.push(Diagnostic {
                                path: f.path.clone(),
                                line: c.line,
                                rule: "guard-across-rpc".into(),
                                message: format!(
                                    "guard on `{}` (line {}) held across {}; the peer's reply can \
                                     block on a revocation that needs this lock (§5.1/§6.4)",
                                    live_rpc[0].0,
                                    live_rpc[0].1,
                                    if c.direct_rpc {
                                        "a dfs-rpc send".to_string()
                                    } else {
                                        format!("`{}`, which sends dfs-rpc", c.callee)
                                    }
                                ),
                            });
                        }
                    }
                }
                // Interprocedural lock-order edges.
                for g in resolve(fi, &c.callee, &c.receiver) {
                    for to in &reach[g] {
                        for (h, _) in &c.held {
                            let from = (f.crate_name.clone(), h.clone());
                            if &from == to {
                                // Same lock reached through a call: almost
                                // always the recursion artifact of nearest-
                                // definition resolution, not a real
                                // re-entry; covered dynamically instead.
                                continue;
                            }
                            edges.push(Edge {
                                from,
                                to: to.clone(),
                                file: fi,
                                line: c.line,
                                via: Some(c.callee.clone()),
                            });
                        }
                    }
                }
            }
        }
    }

    // ---- rule (a): rank inversions on edges ----
    for e in &edges {
        if e.from.0 == e.to.0 && base(&e.from.1) == base(&e.to.1) {
            // Same sharded field reached through a call: the intra-fn
            // shard-order rule and the runtime indexed enforcer own
            // same-field ordering; rank comparison would misread it as
            // same-rank nesting.
            continue;
        }
        let (Some(fa), Some(fb)) = (
            fields.get(&(e.from.0.clone(), base(&e.from.1).to_string())),
            fields.get(&(e.to.0.clone(), base(&e.to.1).to_string())),
        ) else {
            continue;
        };
        let (Some(ra), Some(rb)) = (fa.rank, fb.rank) else { continue };
        if rb > ra {
            continue; // ascending — the sanctioned direction
        }
        // Would-be violation established; consult suppressions (`|` so
        // both field exemptions get usage credit).
        if exempt_field(&e.from, "lock-order") | exempt_field(&e.to, "lock-order") {
            continue;
        }
        if suppressed_at(e.file, e.line, "lock-order") {
            continue;
        }
        let via = e.via.as_ref().map(|v| format!(" via `{v}`")).unwrap_or_default();
        if rb < ra {
            diags.push(Diagnostic {
                path: files[e.file].path.clone(),
                line: e.line,
                rule: "lock-order".into(),
                message: format!(
                    "acquiring `{}` (rank {}) while holding `{}` (rank {}){} inverts the \
                     declared hierarchy",
                    e.to.1, rb, e.from.1, ra, via
                ),
            });
        } else {
            diags.push(Diagnostic {
                path: files[e.file].path.clone(),
                line: e.line,
                rule: "lock-order".into(),
                message: format!(
                    "acquiring `{}` while holding `{}`{} — both rank {}; same-rank locks must \
                     never nest",
                    e.to.1, e.from.1, via, ra
                ),
            });
        }
    }

    // ---- rule (a): cycles involving unranked locks ----
    // Ranked-field cycles necessarily contain a rank inversion and are
    // already reported above; here we catch A→B / B→A orderings among
    // locks with no declared rank.
    let mut adj: BTreeMap<&FieldKey, BTreeSet<&FieldKey>> = BTreeMap::new();
    for e in &edges {
        adj.entry(&e.from).or_default().insert(&e.to);
    }
    let reachable = |from: &FieldKey, to: &FieldKey| -> bool {
        let mut seen: BTreeSet<&FieldKey> = BTreeSet::new();
        let mut stack = vec![from];
        while let Some(k) = stack.pop() {
            if k == to {
                return true;
            }
            if let Some(next) = adj.get(k) {
                for n in next {
                    if seen.insert(n) {
                        stack.push(n);
                    }
                }
            }
        }
        false
    };
    let ranked =
        |k: &FieldKey| fields.get(&(k.0.clone(), base(&k.1).to_string())).and_then(|f| f.rank).is_some();
    let mut reported: BTreeSet<(FieldKey, FieldKey)> = BTreeSet::new();
    for e in &edges {
        if e.from == e.to {
            continue;
        }
        if ranked(&e.from) && ranked(&e.to) {
            continue;
        }
        let pair = if e.from <= e.to {
            (e.from.clone(), e.to.clone())
        } else {
            (e.to.clone(), e.from.clone())
        };
        if reported.contains(&pair) {
            continue;
        }
        if reachable(&e.to, &e.from) {
            if exempt_field(&e.from, "lock-order") | exempt_field(&e.to, "lock-order") {
                continue;
            }
            if suppressed_at(e.file, e.line, "lock-order") {
                continue;
            }
            reported.insert(pair);
            let via = e.via.as_ref().map(|v| format!(" via `{v}`")).unwrap_or_default();
            diags.push(Diagnostic {
                path: files[e.file].path.clone(),
                line: e.line,
                rule: "lock-order".into(),
                message: format!(
                    "lock-order cycle: `{}.{}` acquired while holding `{}.{}`{}, but another \
                     path acquires them in the opposite order",
                    e.to.0, e.to.1, e.from.0, e.from.1, via
                ),
            });
        }
    }

    // ---- rule (d): std::sync locks ----
    for (fi, f) in files.iter().enumerate() {
        for (line, ty) in &f.std_sync_sites {
            if suppressed_at(fi, *line, "std-sync") {
                continue;
            }
            diags.push(Diagnostic {
                path: f.path.clone(),
                line: *line,
                rule: "std-sync".into(),
                message: format!(
                    "std::sync::{ty} in non-test code; use parking_lot via \
                     dfs_types::lock::Ordered{ty} so the rank enforcer sees it"
                ),
            });
        }
    }

    // ---- rule (e): lockset coverage ----
    let fmt_held = |set: &BTreeSet<String>| -> String {
        if set.is_empty() {
            "no lock".to_string()
        } else {
            set.iter().map(|s| format!("`{s}`")).collect::<Vec<_>>().join(", ")
        }
    };
    for finding in lockset::analyze(files, &fns_pairs, &resolved) {
        // A decl-site allow exempts the field everywhere.
        let mut decl_exempt = false;
        for (df, dl) in &finding.decl {
            decl_exempt |= suppressed_at(*df, *dl, "lockset");
        }
        if decl_exempt {
            continue;
        }
        // Report at the least-protected write site (the likeliest
        // culprit) that is not itself suppressed.
        let mut writes: Vec<&lockset::Site> = finding.sites.iter().filter(|s| s.write).collect();
        writes.sort_by(|a, b| {
            (a.held.len(), &files[a.file].path, a.line)
                .cmp(&(b.held.len(), &files[b.file].path, b.line))
        });
        for site in writes {
            if suppressed_at(site.file, site.line, "lockset") {
                continue;
            }
            let witness = finding
                .sites
                .iter()
                .find(|s| {
                    (s.file, s.line) != (site.file, site.line)
                        && s.held.intersection(&site.held).next().is_none()
                })
                .or_else(|| {
                    finding.sites.iter().find(|s| (s.file, s.line) != (site.file, site.line))
                });
            let evidence = witness
                .map(|w| {
                    format!(
                        ", but {}:{} holds {}",
                        files[w.file].path,
                        w.line,
                        fmt_held(&w.held)
                    )
                })
                .unwrap_or_default();
            diags.push(Diagnostic {
                path: files[site.file].path.clone(),
                line: site.line,
                rule: "lockset".into(),
                message: format!(
                    "shared field `{}` has an empty candidate lockset across {} access sites: \
                     this write holds {}{}; no common lock protects the field",
                    finding.field,
                    finding.sites.len(),
                    fmt_held(&site.held),
                    evidence
                ),
            });
            break;
        }
    }

    // ---- rule (f): release/reacquire TOCTOU ----
    for g in lockgap::analyze(files) {
        let key = (files[g.file].crate_name.clone(), g.field.clone());
        if g.fn_audited {
            used.borrow_mut().insert((g.file, g.fn_line, "lock-gap".to_string()));
            continue;
        }
        if exempt_field(&key, "lock-gap") {
            continue;
        }
        if suppressed_at(g.file, g.line, "lock-gap") {
            continue;
        }
        diags.push(Diagnostic {
            path: files[g.file].path.clone(),
            line: g.line,
            rule: "lock-gap".into(),
            message: g.message,
        });
    }

    // ---- rule (g): stale or unknown suppressions ----
    // An annotation must either name a real rule and have suppressed a
    // concrete would-be violation above, or it is itself a diagnostic.
    // `allow(unused-allow)` on a line opts that line out (kept for
    // annotations that are load-bearing only on some platforms/configs).
    {
        let used = used.borrow();
        for (fi, f) in files.iter().enumerate() {
            for (line, rules) in &f.allows {
                if rules.contains("unused-allow") {
                    continue;
                }
                let mut sorted: Vec<&String> = rules.iter().collect();
                sorted.sort();
                for rule in sorted {
                    if !RULES.contains(&rule.as_str()) {
                        diags.push(Diagnostic {
                            path: f.path.clone(),
                            line: *line,
                            rule: "unused-allow".into(),
                            message: format!(
                                "`dfs-lint: allow({rule})` names an unknown rule; known rules \
                                 are {}",
                                RULES.join(", ")
                            ),
                        });
                    } else if !used.contains(&(fi, *line, rule.clone())) {
                        diags.push(Diagnostic {
                            path: f.path.clone(),
                            line: *line,
                            rule: "unused-allow".into(),
                            message: format!(
                                "`dfs-lint: allow({rule})` suppresses nothing here; remove the \
                                 stale annotation"
                            ),
                        });
                    }
                }
            }
        }
    }

    diags.sort();
    diags.dedup();
    diags
}
