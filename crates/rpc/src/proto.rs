//! The DEcorum wire protocol: every RPC exchanged in the system.
//!
//! One enum covers the protocol exporter's file interface (§3.5), the
//! volume server (§3.6), the volume location database (§3.4), the
//! authentication service (§3.7), the replication server (§3.8), and the
//! server→client revocation callbacks (§5.3). Keeping them in one place
//! gives the network layer exact per-message accounting, which the
//! consistency/network-load experiments (T3, T4) depend on.

use dfs_token::{Token, TokenId, TokenTypes};
use dfs_types::{
    Acl, ByteRange, ClientId, DfsError, FileStatus, Fid, SerializationStamp, ServerId, Timestamp,
    VolumeId,
};
use dfs_vfs::{DirEntry, SetAttrs, VolumeDump, VolumeInfo, WriteExtent};

/// Token types (and byte range) a client asks for alongside an
/// operation, so one RPC both performs the call and returns guarantees.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TokenRequest {
    /// Types wanted.
    pub types: TokenTypes,
    /// Byte range for data/lock types.
    pub range: ByteRange,
}

impl TokenRequest {
    /// Requests nothing.
    pub fn none() -> Option<TokenRequest> {
        None
    }

    /// Requests `types` over the whole file.
    pub fn whole(types: TokenTypes) -> Option<TokenRequest> {
        Some(TokenRequest { types, range: ByteRange::WHOLE })
    }

    /// Requests `types` over `range`.
    pub fn ranged(types: TokenTypes, range: ByteRange) -> Option<TokenRequest> {
        Some(TokenRequest { types, range })
    }
}

/// A Kerberos-style ticket (§3.7), issued by the authentication server.
///
/// Simulation of the trust handshake only — the "session key" is a
/// random identifier the services validate against the registry, not
/// cryptographic material.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Ticket {
    /// Authenticated user.
    pub user: u32,
    /// Opaque session identifier standing in for the session key.
    pub session: u64,
    /// Expiry time.
    pub expires: Timestamp,
}

/// Every request in the DEcorum protocol family.
#[derive(Clone, PartialEq, Debug)]
pub enum Request {
    // ---- Authentication service (§3.7) ----
    /// Obtain a ticket; `secret` stands in for the password proof.
    Login { user: u32, secret: u64 },

    // ---- Volume location database (§3.4) ----
    /// Which server hosts this volume?
    VlLookup { volume: VolumeId },
    /// Register/move a volume's location.
    VlRegister { volume: VolumeId, server: ServerId },
    /// Remove a volume's location entry.
    VlUnregister { volume: VolumeId },
    /// Enumerate all known volumes.
    VlList,
    /// Register `server` as a §3.8 read-only replica of `volume` —
    /// the location clients fail over to when the primary is down.
    VlAddReplica { volume: VolumeId, server: ServerId },
    /// The read-only replicas registered for `volume`.
    VlReplicas { volume: VolumeId },

    // ---- Protocol exporter: file access (§3.5, §5) ----
    /// Fid of a volume's root directory.
    GetRoot { volume: VolumeId },
    /// Fetch status, optionally with tokens.
    FetchStatus { fid: Fid, want: Option<TokenRequest> },
    /// Fetch data (and status), optionally with tokens.
    FetchData { fid: Fid, offset: u64, len: u32, want: Option<TokenRequest> },
    /// Store data back (used both by normal writes and by the special
    /// store issued from token-revocation code, §6.3).
    StoreData { fid: Fid, offset: u64, data: Vec<u8> },
    /// Store several discontiguous extents back in one RPC. The server
    /// applies the whole batch in a single journal transaction ending in
    /// one group commit, so a 64 KB store-back costs one log force
    /// instead of sixteen.
    StoreDataVec { fid: Fid, extents: Vec<WriteExtent> },
    /// Store status changes back.
    StoreStatus { fid: Fid, attrs: SetAttrs },
    /// Force everything previously acknowledged for this file's volume
    /// to stable storage (POSIX fsync with no data in flight: a freshly
    /// created file must survive a crash even though there was no store
    /// whose group commit would have forced the log).
    Fsync { fid: Fid },
    /// Obtain tokens without other work.
    GetToken { fid: Fid, want: TokenRequest },
    /// Return a token after revocation or voluntarily (§5.3).
    ReturnToken { fid: Fid, token: TokenId },
    /// Directory lookup, optionally granting tokens on the result.
    Lookup { dir: Fid, name: String, want: Option<TokenRequest> },
    /// Create a regular file.
    Create { dir: Fid, name: String, mode: u16 },
    /// Create a directory.
    Mkdir { dir: Fid, name: String, mode: u16 },
    /// Create a symlink.
    Symlink { dir: Fid, name: String, target: String },
    /// Add a hard link.
    Link { dir: Fid, name: String, target: Fid },
    /// Remove a file entry.
    Remove { dir: Fid, name: String },
    /// Remove an empty directory.
    Rmdir { dir: Fid, name: String },
    /// Rename within the volume.
    Rename { src_dir: Fid, src_name: String, dst_dir: Fid, dst_name: String },
    /// List a directory.
    Readdir { dir: Fid },
    /// Read a symlink target.
    Readlink { fid: Fid },
    /// Read an ACL (§2.3).
    GetAcl { fid: Fid },
    /// Replace an ACL.
    SetAcl { fid: Fid, acl: Acl },
    /// Set or clear a byte-range file lock at the server (used when the
    /// client holds no lock token).
    SetLock { fid: Fid, range: ByteRange, write: bool },
    /// Release a server-side file lock.
    ReleaseLock { fid: Fid, range: ByteRange },

    // ---- Volume server (§3.6) ----
    /// Create an empty volume on this server.
    VolCreate { volume: VolumeId, name: String },
    /// Delete a volume.
    VolDelete { volume: VolumeId },
    /// Clone a volume into a read-only snapshot (§2.1).
    VolClone { src: VolumeId, clone: VolumeId, name: String },
    /// Dump a volume (full or incremental).
    VolDump { volume: VolumeId, since_version: u64 },
    /// Restore a dumped volume.
    VolRestore { dump: VolumeDump, read_only: bool },
    /// Info for one volume.
    VolInfo { volume: VolumeId },
    /// All volumes on this server.
    VolList,
    /// Move a volume to another server (driven by the source's volume
    /// server; updates the VLDB when complete).
    VolMove { volume: VolumeId, target: ServerId },
    /// Install live client grants at a volume-move target (§2.1 live
    /// move). Token ids are preserved verbatim so the clients' cached
    /// tokens stay valid across the move without any revocation;
    /// `stamps` carries each file's serialization floor so the target's
    /// stamps continue the source's order and client status merges stay
    /// monotone (§6.2).
    VolInstallTokens {
        volume: VolumeId,
        grants: Vec<(ClientId, Token)>,
        stamps: Vec<(Fid, SerializationStamp)>,
    },
    /// Abort a move after the bulk ship: the target discards the staged
    /// copy of `volume` so a failed move cannot leave a stale fork
    /// behind. A no-op if the volume was never staged (or was already
    /// promoted by `VolInstallTokens`).
    VolDiscard { volume: VolumeId },

    // ---- Replication server (§3.8) ----
    /// Start lazily replicating `volume` from `source` with the given
    /// maximum staleness.
    ReplAdd { volume: VolumeId, source: ServerId, max_staleness_us: u64 },
    /// Run one replica-refresh pass now (driven by the simulation
    /// clock; a daemon thread in production).
    ReplTick,

    // ---- Crash recovery (epoch/grace protocol) ----
    /// Re-register tokens the caller held before the server restarted.
    /// Valid only while the server's post-restart grace window is open;
    /// `epoch` is the restarted server's epoch as observed by the
    /// client (a stale epoch is rejected). The server re-grants each
    /// token that does not conflict with tokens already reestablished
    /// by other hosts and returns the fresh grants.
    ReestablishTokens { epoch: u64, tokens: Vec<Token> },
    /// Ask a server for its current epoch and grace status.
    GetEpoch,

    // ---- Server → client callbacks (§5.3) ----
    /// Revoke the given type bits of a token; the client must store
    /// dirty data/status covered by those bits first.
    RevokeToken { token: Token, types: TokenTypes, stamp: SerializationStamp },
    /// Revoke several tokens in one callback: every same-host
    /// revocation produced by one conflict check, batched the way
    /// `StoreDataVec` batches store-backs. Each item carries the token,
    /// the type bits to give up, and the revocation's serialization
    /// stamp; the peer answers each item exactly once, in order.
    RevokeVec { items: Vec<(Token, TokenTypes, SerializationStamp)> },
    /// Liveness probe.
    Ping,
}

/// Every response in the protocol family.
#[derive(Clone, PartialEq, Debug)]
pub enum Response {
    /// Success with no payload.
    Ok,
    /// Failure.
    Err(DfsError),
    /// A ticket from the authentication server.
    TicketGranted(Ticket),
    /// A volume's location plus the VLDB entry's generation number,
    /// bumped every time the volume changes servers. Clients cache
    /// `(server, generation)` and only accept strictly newer entries,
    /// so a stale `WrongServer` hint can never roll a cache back.
    Location { server: ServerId, generation: u64 },
    /// All volume locations with their generations.
    Locations(Vec<(VolumeId, ServerId, u64)>),
    /// The read-only replica servers registered for a volume (answer to
    /// `VlReplicas`; empty when the volume has no replicas).
    Replicas(Vec<ServerId>),
    /// A fid (root lookups).
    FidIs(Fid),
    /// Status plus any granted tokens and the serialization stamp of
    /// this reference (§6.2: "time stamps must appear in return
    /// parameters from calls that read or write status information").
    /// `epoch` is the serving instance's restart epoch — clients compare
    /// it against the last epoch they saw to detect a crash-restart.
    /// `stale_us` is 0 when the volume's primary served this response;
    /// a §3.8 read-only replica stamps its bounded staleness (µs since
    /// its last refresh, always ≥ 1) so callers can account honestly
    /// for how old the answer may be.
    Status {
        status: FileStatus,
        tokens: Vec<Token>,
        stamp: SerializationStamp,
        epoch: u64,
        stale_us: u64,
    },
    /// Data plus status, tokens, stamp, server epoch, and the same
    /// staleness bound as `Status`.
    Data {
        bytes: Vec<u8>,
        status: FileStatus,
        tokens: Vec<Token>,
        stamp: SerializationStamp,
        epoch: u64,
        stale_us: u64,
    },
    /// Directory listing.
    Entries(Vec<DirEntry>),
    /// Symlink target.
    Target(String),
    /// An ACL.
    AclIs(Acl),
    /// A volume dump.
    Dump(VolumeDump),
    /// Volume info.
    VolumeIs(VolumeInfo),
    /// Volume list.
    Volumes(Vec<VolumeInfo>),
    /// Client's answer to a revocation: true = returned, false = kept.
    RevokeAck { returned: bool },
    /// Per-token answers to a `RevokeVec`, in request order: true =
    /// returned, false = kept. A vector shorter than the request leaves
    /// the tail unacknowledged — the server counts those tokens as
    /// returned and its retry round re-revokes any that survive.
    RevokeVecAck { returned: Vec<bool> },
    /// Tokens actually re-granted by a `ReestablishTokens` call (fresh
    /// token ids; same fid/types/range as the claims that survived the
    /// conflict check).
    Reestablished { epoch: u64, tokens: Vec<Token> },
    /// Answer to `GetEpoch`.
    EpochIs { epoch: u64, in_grace: bool },
    /// The volume named by the request is not hosted here. `hint` is
    /// where this server believes the volume lives now (its route table
    /// after a move, else a fresh VLDB lookup), and `generation` is the
    /// VLDB generation backing the hint. The caller installs the hint in
    /// its location cache (if newer) and retries there (§2.1).
    WrongServer { hint: ServerId, generation: u64 },
}

impl Request {
    /// Short label for per-message statistics.
    pub fn label(&self) -> &'static str {
        match self {
            Request::Login { .. } => "Login",
            Request::VlLookup { .. } => "VlLookup",
            Request::VlRegister { .. } => "VlRegister",
            Request::VlUnregister { .. } => "VlUnregister",
            Request::VlList => "VlList",
            Request::VlAddReplica { .. } => "VlAddReplica",
            Request::VlReplicas { .. } => "VlReplicas",
            Request::GetRoot { .. } => "GetRoot",
            Request::FetchStatus { .. } => "FetchStatus",
            Request::FetchData { .. } => "FetchData",
            Request::StoreData { .. } => "StoreData",
            Request::StoreDataVec { .. } => "StoreDataVec",
            Request::StoreStatus { .. } => "StoreStatus",
            Request::Fsync { .. } => "Fsync",
            Request::GetToken { .. } => "GetToken",
            Request::ReturnToken { .. } => "ReturnToken",
            Request::Lookup { .. } => "Lookup",
            Request::Create { .. } => "Create",
            Request::Mkdir { .. } => "Mkdir",
            Request::Symlink { .. } => "Symlink",
            Request::Link { .. } => "Link",
            Request::Remove { .. } => "Remove",
            Request::Rmdir { .. } => "Rmdir",
            Request::Rename { .. } => "Rename",
            Request::Readdir { .. } => "Readdir",
            Request::Readlink { .. } => "Readlink",
            Request::GetAcl { .. } => "GetAcl",
            Request::SetAcl { .. } => "SetAcl",
            Request::SetLock { .. } => "SetLock",
            Request::ReleaseLock { .. } => "ReleaseLock",
            Request::VolCreate { .. } => "VolCreate",
            Request::VolDelete { .. } => "VolDelete",
            Request::VolClone { .. } => "VolClone",
            Request::VolDump { .. } => "VolDump",
            Request::VolRestore { .. } => "VolRestore",
            Request::VolInfo { .. } => "VolInfo",
            Request::VolList => "VolList",
            Request::VolMove { .. } => "VolMove",
            Request::VolInstallTokens { .. } => "VolInstallTokens",
            Request::VolDiscard { .. } => "VolDiscard",
            Request::ReplAdd { .. } => "ReplAdd",
            Request::ReplTick => "ReplTick",
            Request::ReestablishTokens { .. } => "ReestablishTokens",
            Request::GetEpoch => "GetEpoch",
            Request::RevokeToken { .. } => "RevokeToken",
            Request::RevokeVec { .. } => "RevokeVec",
            Request::Ping => "Ping",
        }
    }

    /// Approximate bytes on the wire (headers plus payload).
    pub fn wire_size(&self) -> u64 {
        const HDR: u64 = 64; // RPC header, fid, auth verifier.
        HDR + match self {
            Request::StoreData { data, .. } => data.len() as u64,
            // Each extent carries an (offset, length) descriptor pair
            // ahead of its payload.
            Request::StoreDataVec { extents, .. } => {
                extents.iter().map(|e| 16 + e.data.len() as u64).sum::<u64>()
            }
            Request::Lookup { name, .. }
            | Request::Create { name, .. }
            | Request::Mkdir { name, .. }
            | Request::Remove { name, .. }
            | Request::Rmdir { name, .. } => name.len() as u64,
            Request::Symlink { name, target, .. } => (name.len() + target.len()) as u64,
            Request::Rename { src_name, dst_name, .. } => {
                (src_name.len() + dst_name.len()) as u64
            }
            Request::SetAcl { acl, .. } => 7 * acl.len() as u64,
            Request::VolRestore { dump, .. } => dump.payload_bytes(),
            // Each claimed token: id, fid, types, range.
            Request::ReestablishTokens { tokens, .. } => 40 * tokens.len() as u64,
            // Each shipped grant: holder + token (44); each stamp
            // floor: fid + stamp (24).
            Request::VolInstallTokens { grants, stamps, .. } => {
                44 * grants.len() as u64 + 24 * stamps.len() as u64
            }
            // Each batched revocation: token (40) + types (4) + stamp (8).
            Request::RevokeVec { items } => 52 * items.len() as u64,
            _ => 0,
        }
    }
}

impl Response {
    /// Approximate bytes on the wire.
    pub fn wire_size(&self) -> u64 {
        const HDR: u64 = 48;
        HDR + match self {
            Response::Data { bytes, .. } => bytes.len() as u64 + 104,
            Response::Status { .. } => 104,
            Response::Entries(es) => {
                es.iter().map(|e| e.name.len() as u64 + 20).sum::<u64>()
            }
            Response::Dump(d) => d.payload_bytes(),
            Response::AclIs(acl) => 7 * acl.len() as u64,
            Response::Volumes(vs) => 64 * vs.len() as u64,
            Response::Target(t) => t.len() as u64,
            // volume id + server id + generation per entry.
            Response::Locations(ls) => 20 * ls.len() as u64,
            // One server id per replica.
            Response::Replicas(rs) => 8 * rs.len() as u64,
            // hint server id + generation.
            Response::WrongServer { .. } => 12,
            Response::Reestablished { tokens, .. } => 40 * tokens.len() as u64,
            // One answer byte per batched revocation.
            Response::RevokeVecAck { returned } => returned.len() as u64,
            _ => 0,
        }
    }

    /// Unwraps an error response into a `DfsResult`.
    pub fn into_result(self) -> Result<Response, DfsError> {
        match self {
            Response::Err(e) => Err(e),
            other => Ok(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_size_counts_payload() {
        let small = Request::Ping;
        let big = Request::StoreData {
            fid: Fid::default(),
            offset: 0,
            data: vec![0; 10_000],
        };
        assert!(big.wire_size() > small.wire_size() + 9_000);
    }

    #[test]
    fn revoke_vec_wire_size_counts_every_item() {
        let item = |vnode: u32| {
            (
                Token {
                    id: TokenId(vnode as u64),
                    fid: Fid::default(),
                    types: TokenTypes::DATA_WRITE,
                    range: ByteRange::WHOLE,
                },
                TokenTypes::DATA_WRITE,
                SerializationStamp(1),
            )
        };
        let req = Request::RevokeVec { items: vec![item(1), item(2), item(3)] };
        // Header (64) + 52 per item (token 40 + types 4 + stamp 8).
        assert_eq!(req.wire_size(), 64 + 3 * 52);
        assert_eq!(req.label(), "RevokeVec");
        // A batch of N costs far less than N single revocations: each
        // RevokeToken pays the full 64-byte header again.
        let single = Request::RevokeToken {
            token: item(1).0,
            types: TokenTypes::DATA_WRITE,
            stamp: SerializationStamp(1),
        };
        assert!(req.wire_size() < 3 * single.wire_size() + 3 * 52);
        // Acks answer one byte per token over the response header.
        let ack = Response::RevokeVecAck { returned: vec![true, false, true] };
        assert_eq!(ack.wire_size(), 48 + 3);
    }

    #[test]
    fn store_data_vec_wire_size_counts_every_extent() {
        let extents = vec![
            WriteExtent { offset: 0, data: vec![0; 4096] },
            WriteExtent { offset: 65536, data: vec![0; 100] },
        ];
        let req = Request::StoreDataVec { fid: Fid::default(), extents };
        // Header (64) + 2 descriptors (16 each) + payloads.
        assert_eq!(req.wire_size(), 64 + 16 + 4096 + 16 + 100);
        assert_eq!(req.label(), "StoreDataVec");
        // A one-extent vec costs 16 bytes more than the flat StoreData —
        // the client prefers StoreData for single extents.
        let flat = Request::StoreData { fid: Fid::default(), offset: 0, data: vec![0; 4096] };
        assert_eq!(flat.wire_size() + 16, Request::StoreDataVec {
            fid: Fid::default(),
            extents: vec![WriteExtent { offset: 0, data: vec![0; 4096] }],
        }
        .wire_size());
    }

    #[test]
    fn response_into_result() {
        assert!(Response::Ok.into_result().is_ok());
        assert_eq!(
            Response::Err(DfsError::NotFound).into_result().unwrap_err(),
            DfsError::NotFound
        );
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Request::Ping.label(), "Ping");
        assert_eq!(Request::VlList.label(), "VlList");
        assert_eq!(
            Request::FetchStatus { fid: Fid::default(), want: TokenRequest::none() }.label(),
            "FetchStatus"
        );
    }

    #[test]
    fn token_request_builders() {
        let w = TokenRequest::whole(TokenTypes::DATA_READ).unwrap();
        assert_eq!(w.range, ByteRange::WHOLE);
        let r = TokenRequest::ranged(TokenTypes::DATA_WRITE, ByteRange::new(0, 10)).unwrap();
        assert_eq!(r.range.len(), 10);
        assert!(TokenRequest::none().is_none());
    }
}
