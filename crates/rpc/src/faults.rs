//! Deterministic fault-injection plane for the simulated network.
//!
//! A [`FaultSchedule`] is a declarative list of [`FaultRule`]s plus a
//! PRNG seed. Every call crossing the [`crate::Network`] is matched
//! against the rules in order (first match wins) and, when a rule fires,
//! the call is dropped, delayed, duplicated, answered-then-forgotten, or
//! used as the trigger to crash the callee.
//!
//! # Determinism contract
//!
//! Fault decisions are a pure function of the schedule and the sequence
//! of matching calls:
//!
//! * rules with `prob_pct == 100` and counter conditions (`after_calls`,
//!   `max_hits`) are exact — the Nth matching call faults, always;
//! * probabilistic rules draw from a single `StdRng` seeded with
//!   [`FaultSchedule::seed`]; draws happen under the network's fault
//!   lock in rule order, so a single-threaded caller sequence replays
//!   identically for the same seed. Concurrent callers interleave
//!   draws nondeterministically — schedules meant to be replayed
//!   exactly should use counter-based rules or single-threaded load.
//!
//! Fault outcomes map onto the ordinary failure vocabulary the rest of
//! the stack already handles: a dropped request or reply surfaces as
//! [`dfs_types::DfsError::Timeout`] (without burning the real-time
//! timeout, so fault tests stay fast), a crashed callee as
//! `Unreachable`. Nothing above the RPC layer can tell injected faults
//! from organic ones — which is the point.

use crate::{Addr, CallClass};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// What happens to a call matched by a [`FaultRule`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultAction {
    /// The request is silently lost; the caller observes a timeout.
    Drop,
    /// The request is delivered after an extra delay (microseconds of
    /// real time — the RPC timeout is real-time too).
    Delay(u64),
    /// The request is dispatched twice (duplicate delivery). The first
    /// reply wins; the duplicate's side effects land regardless, so
    /// handlers must be idempotent.
    Duplicate,
    /// The request executes but the reply is lost: the caller observes
    /// a timeout while the side effect lands — the classic
    /// at-least-once hazard that retry paths must absorb.
    DropReply,
    /// The callee is marked crashed (as by [`crate::Network::set_crashed`])
    /// before this call is delivered; the call fails `Unreachable`.
    CrashNode,
}

/// One declarative fault rule. `None` match fields are wildcards.
///
/// A one-way partition is a directional `Drop` at 100%:
/// `FaultRule::on(FaultAction::Drop).from(a).to(b)`. Crash-on-Nth-call
/// is `FaultRule::on(FaultAction::CrashNode).to(b).after(n - 1).limit(1)`.
#[derive(Clone, Debug)]
pub struct FaultRule {
    /// Caller to match (wildcard when `None`).
    pub from: Option<Addr>,
    /// Callee to match (wildcard when `None`).
    pub to: Option<Addr>,
    /// Dispatch class to match (wildcard when `None`).
    pub class: Option<CallClass>,
    /// Request label to match (wildcard when `None`).
    pub label: Option<&'static str>,
    /// The injected behaviour.
    pub action: FaultAction,
    /// Probability, in percent, that an armed matching call faults.
    pub prob_pct: u8,
    /// Matching calls to let through before the rule arms.
    pub after_calls: u64,
    /// Most faults this rule may inject; `None` is unlimited.
    pub max_hits: Option<u64>,
}

impl FaultRule {
    /// A wildcard rule injecting `action` on every matching call.
    pub fn on(action: FaultAction) -> FaultRule {
        FaultRule {
            from: None,
            to: None,
            class: None,
            label: None,
            action,
            prob_pct: 100,
            after_calls: 0,
            max_hits: None,
        }
    }

    /// Restricts the rule to calls from `addr`.
    pub fn from(mut self, addr: Addr) -> Self {
        self.from = Some(addr);
        self
    }

    /// Restricts the rule to calls to `addr`.
    pub fn to(mut self, addr: Addr) -> Self {
        self.to = Some(addr);
        self
    }

    /// Restricts the rule to one dispatch class.
    pub fn class(mut self, class: CallClass) -> Self {
        self.class = Some(class);
        self
    }

    /// Restricts the rule to one request label (e.g. `"StoreDataVec"`).
    pub fn label(mut self, label: &'static str) -> Self {
        self.label = Some(label);
        self
    }

    /// Sets the fault probability in percent (clamped to 100).
    pub fn prob(mut self, pct: u8) -> Self {
        self.prob_pct = pct.min(100);
        self
    }

    /// Arms the rule only after `n` matching calls have passed.
    pub fn after(mut self, n: u64) -> Self {
        self.after_calls = n;
        self
    }

    /// Caps the number of faults the rule may inject.
    pub fn limit(mut self, n: u64) -> Self {
        self.max_hits = Some(n);
        self
    }

    fn matches(&self, from: Addr, to: Addr, class: CallClass, label: &'static str) -> bool {
        self.from.is_none_or(|a| a == from)
            && self.to.is_none_or(|a| a == to)
            && self.class.is_none_or(|c| c == class)
            && self.label.is_none_or(|l| l == label)
    }
}

/// A reproducible fault schedule: a seed and an ordered rule list.
#[derive(Clone, Debug, Default)]
pub struct FaultSchedule {
    /// Seed for the probabilistic draws; two runs of the same schedule
    /// over the same call sequence behave identically.
    pub seed: u64,
    /// Rules, matched in order; the first match decides the call.
    pub rules: Vec<FaultRule>,
}

impl FaultSchedule {
    /// An empty schedule with the given seed.
    pub fn seeded(seed: u64) -> FaultSchedule {
        FaultSchedule { seed, rules: Vec::new() }
    }

    /// Appends a rule.
    pub fn rule(mut self, rule: FaultRule) -> Self {
        self.rules.push(rule);
        self
    }
}

struct RuleState {
    rule: FaultRule,
    /// Matching calls seen so far (armed or not).
    seen: u64,
    /// Faults injected so far.
    hits: u64,
}

/// Live state behind [`crate::Network`]'s fault lock.
pub(crate) struct FaultState {
    rng: StdRng,
    rules: Vec<RuleState>,
    pub(crate) injected: u64,
}

impl FaultState {
    pub(crate) fn new(schedule: FaultSchedule) -> FaultState {
        FaultState {
            rng: StdRng::seed_from_u64(schedule.seed),
            rules: schedule
                .rules
                .into_iter()
                .map(|rule| RuleState { rule, seen: 0, hits: 0 })
                .collect(),
            injected: 0,
        }
    }

    /// Appends freshly-armed rules behind the existing ones. Existing
    /// rules keep their counters and the RNG stream advances only on
    /// armed matches, exactly as before the append — mid-run arming
    /// never perturbs decisions already scheduled.
    pub(crate) fn append(&mut self, rules: Vec<FaultRule>) {
        self.rules.extend(rules.into_iter().map(|rule| RuleState { rule, seen: 0, hits: 0 }));
    }

    /// Decides the fate of one call. First matching armed rule wins.
    pub(crate) fn decide(
        &mut self,
        from: Addr,
        to: Addr,
        class: CallClass,
        label: &'static str,
    ) -> Option<FaultAction> {
        for i in 0..self.rules.len() {
            if !self.rules[i].rule.matches(from, to, class, label) {
                continue;
            }
            self.rules[i].seen += 1;
            let st = &self.rules[i];
            if st.seen <= st.rule.after_calls {
                continue;
            }
            if st.rule.max_hits.is_some_and(|m| st.hits >= m) {
                continue;
            }
            // Every armed match draws, even at prob 100: the RNG stream
            // is then a function of the matching-call sequence alone,
            // so tightening a certain rule's probability never shifts
            // the draws other rules see.
            let roll = self.rng.gen::<u64>() % 100;
            if roll < st.rule.prob_pct as u64 {
                self.rules[i].hits += 1;
                self.injected += 1;
                return Some(self.rules[i].rule.action);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfs_types::{ClientId, ServerId};

    fn c(n: u32) -> Addr {
        Addr::Client(ClientId(n))
    }
    fn s(n: u32) -> Addr {
        Addr::Server(ServerId(n))
    }

    #[test]
    fn wildcard_rule_matches_everything() {
        let mut st = FaultState::new(FaultSchedule::seeded(1).rule(FaultRule::on(FaultAction::Drop)));
        assert_eq!(st.decide(c(1), s(1), CallClass::Normal, "Ping"), Some(FaultAction::Drop));
        assert_eq!(st.decide(s(2), c(3), CallClass::Revocation, "RevokeToken"), Some(FaultAction::Drop));
        assert_eq!(st.injected, 2);
    }

    #[test]
    fn directional_rule_is_one_way() {
        let mut st = FaultState::new(
            FaultSchedule::seeded(1).rule(FaultRule::on(FaultAction::Drop).from(c(1)).to(s(1))),
        );
        assert_eq!(st.decide(c(1), s(1), CallClass::Normal, "Ping"), Some(FaultAction::Drop));
        // The reverse direction is untouched.
        assert_eq!(st.decide(s(1), c(1), CallClass::Normal, "Ping"), None);
    }

    #[test]
    fn after_and_limit_fire_exactly_once_on_the_nth_call() {
        let mut st = FaultState::new(
            FaultSchedule::seeded(1)
                .rule(FaultRule::on(FaultAction::CrashNode).to(s(1)).after(2).limit(1)),
        );
        assert_eq!(st.decide(c(1), s(1), CallClass::Normal, "Ping"), None);
        assert_eq!(st.decide(c(1), s(1), CallClass::Normal, "Ping"), None);
        assert_eq!(st.decide(c(1), s(1), CallClass::Normal, "Ping"), Some(FaultAction::CrashNode));
        assert_eq!(st.decide(c(1), s(1), CallClass::Normal, "Ping"), None, "limit(1) spent");
    }

    #[test]
    fn probabilistic_rules_replay_identically_for_the_same_seed() {
        let schedule =
            FaultSchedule::seeded(42).rule(FaultRule::on(FaultAction::Drop).prob(30));
        let run = |sched: FaultSchedule| -> Vec<bool> {
            let mut st = FaultState::new(sched);
            (0..64)
                .map(|_| st.decide(c(1), s(1), CallClass::Normal, "Ping").is_some())
                .collect()
        };
        let a = run(schedule.clone());
        let b = run(schedule);
        assert_eq!(a, b, "same seed, same decisions");
        assert!(a.iter().any(|&x| x) && a.iter().any(|&x| !x), "30% drops some, not all");
    }

    #[test]
    fn label_filter_matches_one_rpc_kind() {
        let mut st = FaultState::new(
            FaultSchedule::seeded(1).rule(FaultRule::on(FaultAction::DropReply).label("StoreData")),
        );
        assert_eq!(st.decide(c(1), s(1), CallClass::Normal, "Ping"), None);
        assert_eq!(
            st.decide(c(1), s(1), CallClass::Normal, "StoreData"),
            Some(FaultAction::DropReply)
        );
    }
}
