//! The authentication registry: the Kerberos + PasswdEtc analogue (§3.7).
//!
//! The DEcorum authentication service is "based on Kerberos"; user and
//! group information comes from a PasswdEtc-style registry. This module
//! simulates the trust handshake — password check, ticket issue, ticket
//! verification, expiry — without real cryptography: the "session key"
//! is a random identifier that services validate against the registry.

use crate::proto::Ticket;
use dfs_types::{DfsError, DfsResult, SimClock, Timestamp};
use parking_lot::Mutex;
use std::collections::HashMap;

/// Default ticket lifetime (simulated): 10 hours, the Kerberos classic.
pub const TICKET_LIFETIME_US: u64 = 10 * 3600 * 1_000_000;

struct UserEntry {
    secret: u64,
    groups: Vec<u32>,
}

struct Session {
    user: u32,
    expires: Timestamp,
}

/// The user registry and ticket-granting service, shared by the KDC
/// front end and every verifying server.
pub struct AuthRegistry {
    clock: SimClock,
    inner: Mutex<AuthInner>,
}

struct AuthInner {
    users: HashMap<u32, UserEntry>,
    sessions: HashMap<u64, Session>,
    next_session: u64,
}

impl AuthRegistry {
    /// Creates an empty registry.
    pub fn new(clock: SimClock) -> AuthRegistry {
        AuthRegistry {
            clock,
            inner: Mutex::new(AuthInner {
                users: HashMap::new(),
                sessions: HashMap::new(),
                next_session: 0x5e55_0000_0000_0001,
            }),
        }
    }

    /// Registers a user with a password stand-in.
    pub fn add_user(&self, user: u32, secret: u64) {
        self.inner
            .lock()
            .users
            .insert(user, UserEntry { secret, groups: Vec::new() });
    }

    /// Adds a user to a group (PasswdEtc group membership).
    pub fn add_group_member(&self, group: u32, user: u32) {
        if let Some(u) = self.inner.lock().users.get_mut(&user) {
            if !u.groups.contains(&group) {
                u.groups.push(group);
            }
        }
    }

    /// Returns the groups a user belongs to.
    pub fn groups_of(&self, user: u32) -> Vec<u32> {
        self.inner.lock().users.get(&user).map(|u| u.groups.clone()).unwrap_or_default()
    }

    /// Authenticates and issues a ticket.
    pub fn login(&self, user: u32, secret: u64) -> DfsResult<Ticket> {
        let mut inner = self.inner.lock();
        match inner.users.get(&user) {
            Some(u) if u.secret == secret => {}
            _ => return Err(DfsError::AuthenticationFailed),
        }
        inner.next_session = inner.next_session.wrapping_mul(6364136223846793005).wrapping_add(1);
        let session = inner.next_session;
        let expires = self.clock.now().plus_micros(TICKET_LIFETIME_US);
        inner.sessions.insert(session, Session { user, expires });
        Ok(Ticket { user, session, expires })
    }

    /// Verifies a ticket, returning the authenticated user.
    ///
    /// Rejects unknown sessions, user mismatches (a stolen session id
    /// presented for another user), and expired tickets.
    pub fn verify(&self, ticket: &Ticket) -> Option<u32> {
        let inner = self.inner.lock();
        let s = inner.sessions.get(&ticket.session)?;
        if s.user != ticket.user || self.clock.now() > s.expires {
            return None;
        }
        Some(s.user)
    }

    /// Invalidates a session (logout).
    pub fn logout(&self, session: u64) {
        self.inner.lock().sessions.remove(&session);
    }
}

/// The KDC front end: serves [`crate::Request::Login`]
/// over the network (§3.7).
pub struct KdcService {
    auth: Arc<AuthRegistry>,
}

use crate::{CallContext, Request, Response, RpcService};
use std::sync::Arc;

impl KdcService {
    /// Wraps the shared registry as an RPC service.
    pub fn new(auth: Arc<AuthRegistry>) -> Arc<KdcService> {
        Arc::new(KdcService { auth })
    }
}

impl RpcService for KdcService {
    fn dispatch(&self, _ctx: CallContext, req: Request) -> Response {
        match req {
            Request::Login { user, secret } => match self.auth.login(user, secret) {
                Ok(t) => Response::TicketGranted(t),
                Err(e) => Response::Err(e),
            },
            _ => Response::Err(DfsError::InvalidArgument),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn login_verify_cycle() {
        let clock = SimClock::new();
        let auth = AuthRegistry::new(clock);
        auth.add_user(10, 999);
        let t = auth.login(10, 999).unwrap();
        assert_eq!(auth.verify(&t), Some(10));
    }

    #[test]
    fn wrong_password_rejected() {
        let auth = AuthRegistry::new(SimClock::new());
        auth.add_user(10, 999);
        assert_eq!(auth.login(10, 1).unwrap_err(), DfsError::AuthenticationFailed);
        assert_eq!(auth.login(11, 999).unwrap_err(), DfsError::AuthenticationFailed);
    }

    #[test]
    fn tickets_expire_with_simulated_time() {
        let clock = SimClock::new();
        let auth = AuthRegistry::new(clock.clone());
        auth.add_user(10, 999);
        let t = auth.login(10, 999).unwrap();
        clock.advance_micros(TICKET_LIFETIME_US + 1);
        assert_eq!(auth.verify(&t), None, "expired ticket must fail");
    }

    #[test]
    fn stolen_session_for_other_user_rejected() {
        let auth = AuthRegistry::new(SimClock::new());
        auth.add_user(10, 999);
        let t = auth.login(10, 999).unwrap();
        let forged = Ticket { user: 11, ..t };
        assert_eq!(auth.verify(&forged), None);
    }

    #[test]
    fn logout_invalidates() {
        let auth = AuthRegistry::new(SimClock::new());
        auth.add_user(10, 999);
        let t = auth.login(10, 999).unwrap();
        auth.logout(t.session);
        assert_eq!(auth.verify(&t), None);
    }

    #[test]
    fn group_membership() {
        let auth = AuthRegistry::new(SimClock::new());
        auth.add_user(10, 1);
        auth.add_group_member(7, 10);
        auth.add_group_member(7, 10);
        auth.add_group_member(8, 10);
        assert_eq!(auth.groups_of(10), vec![7, 8]);
        assert!(auth.groups_of(99).is_empty());
    }

    #[test]
    fn sessions_are_unique() {
        let auth = AuthRegistry::new(SimClock::new());
        auth.add_user(10, 1);
        let a = auth.login(10, 1).unwrap();
        let b = auth.login(10, 1).unwrap();
        assert_ne!(a.session, b.session);
        assert_eq!(auth.verify(&a), Some(10));
        assert_eq!(auth.verify(&b), Some(10));
    }
}
