//! Simulated NCS-2.0-style RPC substrate (§1, §3.7 and footnote 2).
//!
//! The paper's DCE file system rides on Hewlett-Packard's NCS 2.0 RPC
//! with authentication and connection-oriented transport. This crate
//! provides the equivalent substrate for the reproduction:
//!
//! * an in-process [`Network`] connecting named nodes;
//! * **two-way** calls: clients call servers, and servers call clients
//!   to revoke tokens (§5.3);
//! * **bounded thread pools** per node, with an optional dedicated pool
//!   for calls issued from token-revocation code — exactly the resource
//!   §6.4 says must be reserved to avoid deadlock (ablated in T10);
//! * **per-message accounting** (count and bytes by label) for the
//!   network-load experiments;
//! * **Kerberos-style authentication** (§3.7): a registry issues
//!   tickets, and every authenticated RPC is verified before dispatch.

pub mod auth;
pub mod faults;
pub mod proto;

pub use auth::{AuthRegistry, KdcService};
pub use faults::{FaultAction, FaultRule, FaultSchedule};
pub use proto::{Request, Response, Ticket, TokenRequest};

use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use dfs_types::{ClientId, DfsError, DfsResult, ServerId, SimClock};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A network address: who can be called.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Addr {
    /// A file server (protocol exporter + volume + replication server).
    Server(ServerId),
    /// A client cache manager (callable for revocations).
    Client(ClientId),
    /// A volume location database replica.
    Vldb(u32),
    /// The authentication (Kerberos-style) server.
    Kdc,
}

/// Which pool a call is dispatched on at the receiver.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CallClass {
    /// Ordinary traffic.
    Normal,
    /// A call issued from inside token-revocation code; served by the
    /// dedicated threads of §6.4 so revocation can always make progress.
    Revocation,
}

/// Per-call context handed to the service.
#[derive(Clone, Debug)]
pub struct CallContext {
    /// Who is calling.
    pub caller: Addr,
    /// Authenticated user, if a valid ticket accompanied the call.
    pub principal: Option<u32>,
    /// Dispatch class.
    pub class: CallClass,
}

/// A service bound to an address.
pub trait RpcService: Send + Sync {
    /// Handles one request. Runs on the node's pool threads; may itself
    /// issue calls over the network (e.g. revocations).
    fn dispatch(&self, ctx: CallContext, req: Request) -> Response;
}

/// Thread-pool sizing for a node.
#[derive(Clone, Copy, Debug)]
pub struct PoolConfig {
    /// Worker threads for normal traffic.
    pub workers: usize,
    /// Dedicated workers for revocation-class traffic (0 = share the
    /// normal pool, the ablated configuration of T10).
    pub revocation_workers: usize,
    /// Whether calls must carry a valid ticket.
    pub require_auth: bool,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig { workers: 4, revocation_workers: 2, require_auth: false }
    }
}

/// Network-wide statistics.
#[derive(Clone, Debug, Default)]
pub struct NetStats {
    /// Total calls completed.
    pub calls: u64,
    /// Total bytes (requests + responses).
    pub bytes: u64,
    /// Simulated network time charged (latency × calls).
    pub latency_us: u64,
    /// Calls by request label.
    pub by_label: HashMap<&'static str, u64>,
    /// Bytes by request label.
    pub bytes_by_label: HashMap<&'static str, u64>,
    /// Calls that timed out waiting for a worker or a response.
    pub timeouts: u64,
}

impl NetStats {
    /// Returns `self - earlier` for the scalar counters; label maps are
    /// diffed per key.
    pub fn since(&self, earlier: &NetStats) -> NetStats {
        let mut by_label = HashMap::new();
        for (k, v) in &self.by_label {
            let d = v - earlier.by_label.get(k).copied().unwrap_or(0);
            if d > 0 {
                by_label.insert(*k, d);
            }
        }
        let mut bytes_by_label = HashMap::new();
        for (k, v) in &self.bytes_by_label {
            let d = v - earlier.bytes_by_label.get(k).copied().unwrap_or(0);
            if d > 0 {
                bytes_by_label.insert(*k, d);
            }
        }
        NetStats {
            calls: self.calls - earlier.calls,
            bytes: self.bytes - earlier.bytes,
            latency_us: self.latency_us - earlier.latency_us,
            by_label,
            bytes_by_label,
            timeouts: self.timeouts - earlier.timeouts,
        }
    }
}

type Job = Box<dyn FnOnce() + Send>;

struct Pool {
    tx: Sender<Job>,
}

impl Pool {
    fn new(workers: usize) -> Pool {
        let (tx, rx): (Sender<Job>, Receiver<Job>) = unbounded();
        for _ in 0..workers.max(1) {
            let rx = rx.clone();
            std::thread::spawn(move || {
                while let Ok(job) = rx.recv() {
                    job();
                }
            });
        }
        Pool { tx }
    }
}

struct Node {
    service: Arc<dyn RpcService>,
    normal: Pool,
    revocation: Option<Pool>,
    require_auth: bool,
    crashed: bool,
}

struct NetInner {
    nodes: HashMap<Addr, Arc<Node>>,
    stats: NetStats,
}

/// The simulated network.
///
/// Cheaply cloneable; every node and client holds a handle. Latency is
/// charged to statistics (and the shared [`SimClock`] is *not* advanced:
/// experiments control simulated time explicitly).
#[derive(Clone)]
pub struct Network {
    inner: Arc<Mutex<NetInner>>,
    auth: Arc<AuthRegistry>,
    clock: SimClock,
    latency_us: u64,
    // Microseconds, atomic so tests can tighten the timeout on a network
    // that is already Arc-shared with registered services.
    call_timeout_us: Arc<AtomicU64>,
    /// The fault-injection plane; `None` when no schedule is armed
    /// (the common case pays one lock + one `is_none`).
    faults: Arc<Mutex<Option<faults::FaultState>>>,
    /// Faults injected since the schedule was armed, readable without
    /// the fault lock.
    faults_injected: Arc<AtomicU64>,
}

impl Network {
    /// Creates a network with the given per-call latency (microseconds).
    pub fn new(clock: SimClock, latency_us: u64) -> Network {
        Network {
            inner: Arc::new(Mutex::new(NetInner { nodes: HashMap::new(), stats: NetStats::default() })),
            auth: Arc::new(AuthRegistry::new(clock.clone())),
            clock,
            latency_us,
            call_timeout_us: Arc::new(AtomicU64::new(5_000_000)),
            faults: Arc::new(Mutex::new(None)),
            faults_injected: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Arms a [`FaultSchedule`]: every subsequent call is matched
    /// against its rules. Replaces any schedule already armed and
    /// resets the injected-fault counter.
    pub fn set_fault_schedule(&self, schedule: FaultSchedule) {
        *self.faults.lock() = Some(faults::FaultState::new(schedule));
        self.faults_injected.store(0, Ordering::Relaxed);
    }

    /// Appends `schedule`'s rules to the live fault plane *without*
    /// disturbing rules already armed: their `seen`/`hits` counters and
    /// the probabilistic RNG stream are untouched, so a scenario
    /// timeline can arm new rules mid-run (at an op-count offset) while
    /// earlier rules keep replaying deterministically. When no schedule
    /// is armed, this arms one exactly like [`Self::set_fault_schedule`].
    pub fn add_fault_rules(&self, schedule: FaultSchedule) {
        let mut guard = self.faults.lock();
        match guard.as_mut() {
            Some(state) => state.append(schedule.rules),
            None => {
                *guard = Some(faults::FaultState::new(schedule));
                self.faults_injected.store(0, Ordering::Relaxed);
            }
        }
    }

    /// Disarms the fault plane.
    pub fn clear_faults(&self) {
        *self.faults.lock() = None;
    }

    /// Faults injected since the current schedule was armed.
    pub fn faults_injected(&self) -> u64 {
        self.faults_injected.load(Ordering::Relaxed)
    }

    /// Returns the authentication registry shared by KDC and services.
    pub fn auth(&self) -> &Arc<AuthRegistry> {
        &self.auth
    }

    /// Returns the simulation clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Sets the real-time timeout used to detect stalls (tests of the
    /// §6.4 deadlock use a short timeout). Takes effect for calls that
    /// start after the store; safe on a shared network.
    pub fn set_call_timeout(&self, timeout: Duration) {
        self.call_timeout_us.store(timeout.as_micros() as u64, Ordering::Relaxed);
    }

    /// The current per-call timeout.
    pub fn call_timeout(&self) -> Duration {
        Duration::from_micros(self.call_timeout_us.load(Ordering::Relaxed))
    }

    /// Binds `service` at `addr` with the given pool configuration.
    pub fn register(&self, addr: Addr, service: Arc<dyn RpcService>, cfg: PoolConfig) {
        let node = Node {
            service,
            normal: Pool::new(cfg.workers),
            revocation: (cfg.revocation_workers > 0)
                .then(|| Pool::new(cfg.revocation_workers)),
            require_auth: cfg.require_auth,
            crashed: false,
        };
        self.inner.lock().nodes.insert(addr, Arc::new(node));
    }

    /// Removes a node from the network.
    pub fn unregister(&self, addr: Addr) {
        self.inner.lock().nodes.remove(&addr);
    }

    /// Marks a node crashed (calls fail) or restores it.
    pub fn set_crashed(&self, addr: Addr, crashed: bool) {
        let mut inner = self.inner.lock();
        if let Some(node) = inner.nodes.get(&addr) {
            let node = Arc::new(Node {
                service: node.service.clone(),
                normal: Pool { tx: node.normal.tx.clone() },
                revocation: node.revocation.as_ref().map(|p| Pool { tx: p.tx.clone() }),
                require_auth: node.require_auth,
                crashed,
            });
            inner.nodes.insert(addr, node);
        }
    }

    /// Performs a synchronous RPC from `from` to `to`.
    ///
    /// The request is dispatched on the callee's pool (the revocation
    /// pool for [`CallClass::Revocation`] if configured); the caller
    /// blocks for the response. Latency and bytes are charged to the
    /// network statistics.
    pub fn call(
        &self,
        from: Addr,
        to: Addr,
        ticket: Option<Ticket>,
        class: CallClass,
        req: Request,
    ) -> DfsResult<Response> {
        // Authentication check (§3.7: "All RPC's are authenticated").
        let principal = match ticket {
            Some(t) => self.auth.verify(&t),
            None => None,
        };
        self.call_with_principal(from, to, principal, class, req)
    }

    /// Re-issues a call on behalf of an already-authenticated principal:
    /// the trusted inter-server channel a server uses to forward a
    /// client's one-shot request to the volume's owner, so the owner's
    /// access checks run against the original caller, not the proxy.
    /// Only servers may speak it — a client cannot fabricate a
    /// principal this way.
    pub fn call_forwarded(
        &self,
        from: Addr,
        to: Addr,
        principal: Option<u32>,
        class: CallClass,
        req: Request,
    ) -> DfsResult<Response> {
        if !matches!(from, Addr::Server(_)) {
            return Err(DfsError::InvalidArgument);
        }
        self.call_with_principal(from, to, principal, class, req)
    }

    fn call_with_principal(
        &self,
        from: Addr,
        to: Addr,
        principal: Option<u32>,
        class: CallClass,
        req: Request,
    ) -> DfsResult<Response> {
        let node = {
            let inner = self.inner.lock();
            inner.nodes.get(&to).cloned().ok_or(DfsError::Unreachable)?
        };
        if node.crashed {
            return Err(DfsError::Unreachable);
        }
        let label = req.label();
        let req_bytes = req.wire_size();

        // Fault plane: an armed schedule may drop, delay, duplicate,
        // crash, or eat the reply of this call (see [`faults`]).
        let fault = {
            let mut guard = self.faults.lock();
            guard.as_mut().and_then(|st| {
                let f = st.decide(from, to, class, label);
                if f.is_some() {
                    self.faults_injected.store(st.injected, Ordering::Relaxed);
                }
                f
            })
        };
        match fault {
            Some(FaultAction::Drop) => {
                // Lost in flight: surface the timeout immediately
                // instead of burning the real-time timeout budget.
                self.inner.lock().stats.timeouts += 1;
                return Err(DfsError::Timeout);
            }
            Some(FaultAction::CrashNode) => {
                self.set_crashed(to, true);
                return Err(DfsError::Unreachable);
            }
            Some(FaultAction::Delay(us)) => {
                std::thread::sleep(Duration::from_micros(us));
            }
            _ => {}
        }

        if node.require_auth && principal.is_none() {
            // Account the rejected call too; it did cross the network.
            self.charge(label, req_bytes + 48);
            return Ok(Response::Err(DfsError::AuthenticationFailed));
        }

        // Capacity 2: a duplicated delivery's second reply must never
        // block a pool worker on the send.
        let (reply_tx, reply_rx) = bounded::<Response>(2);
        let service = node.service.clone();
        let ctx = CallContext { caller: from, principal, class };
        let pool = match class {
            CallClass::Revocation => node.revocation.as_ref().unwrap_or(&node.normal),
            CallClass::Normal => &node.normal,
        };
        if fault == Some(FaultAction::Duplicate) {
            let (service, ctx, req, reply_tx) =
                (service.clone(), ctx.clone(), req.clone(), reply_tx.clone());
            let dup: Job = Box::new(move || {
                let resp = service.dispatch(ctx, req);
                let _ = reply_tx.send(resp);
            });
            pool.tx.send(dup).map_err(|_| DfsError::Unreachable)?;
        }
        let job: Job = Box::new(move || {
            let resp = service.dispatch(ctx, req);
            let _ = reply_tx.send(resp);
        });
        pool.tx.send(job).map_err(|_| DfsError::Unreachable)?;

        if fault == Some(FaultAction::DropReply) {
            // The request executes (its side effects land) but the
            // reply is lost; dropping the receiver is safe because the
            // worker's send ignores a disconnected channel.
            drop(reply_rx);
            self.inner.lock().stats.timeouts += 1;
            return Err(DfsError::Timeout);
        }

        match reply_rx.recv_timeout(self.call_timeout()) {
            Ok(resp) => {
                self.charge(label, req_bytes + resp.wire_size());
                Ok(resp)
            }
            Err(_) => {
                let mut inner = self.inner.lock();
                inner.stats.timeouts += 1;
                Err(DfsError::Timeout)
            }
        }
    }

    fn charge(&self, label: &'static str, bytes: u64) {
        let mut inner = self.inner.lock();
        inner.stats.calls += 1;
        inner.stats.bytes += bytes;
        inner.stats.latency_us += self.latency_us;
        *inner.stats.by_label.entry(label).or_insert(0) += 1;
        *inner.stats.bytes_by_label.entry(label).or_insert(0) += bytes;
    }

    /// Returns a snapshot of the network statistics.
    pub fn stats(&self) -> NetStats {
        self.inner.lock().stats.clone()
    }

    /// Resets the statistics counters.
    pub fn reset_stats(&self) {
        self.inner.lock().stats = NetStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    struct Echo;
    impl RpcService for Echo {
        fn dispatch(&self, _ctx: CallContext, req: Request) -> Response {
            match req {
                Request::Ping => Response::Ok,
                _ => Response::Err(DfsError::InvalidArgument),
            }
        }
    }

    fn client(n: u32) -> Addr {
        Addr::Client(ClientId(n))
    }

    fn server(n: u32) -> Addr {
        Addr::Server(ServerId(n))
    }

    #[test]
    fn basic_call_and_stats() {
        let net = Network::new(SimClock::new(), 1000);
        net.register(server(1), Arc::new(Echo), PoolConfig::default());
        let r = net.call(client(1), server(1), None, CallClass::Normal, Request::Ping).unwrap();
        assert_eq!(r, Response::Ok);
        let s = net.stats();
        assert_eq!(s.calls, 1);
        assert_eq!(s.by_label["Ping"], 1);
        assert_eq!(s.latency_us, 1000);
        assert!(s.bytes >= 64 + 48);
    }

    #[test]
    fn unknown_node_is_unreachable() {
        let net = Network::new(SimClock::new(), 0);
        let err =
            net.call(client(1), server(9), None, CallClass::Normal, Request::Ping).unwrap_err();
        assert_eq!(err, DfsError::Unreachable);
    }

    #[test]
    fn crashed_node_refuses_calls() {
        let net = Network::new(SimClock::new(), 0);
        net.register(server(1), Arc::new(Echo), PoolConfig::default());
        net.set_crashed(server(1), true);
        assert_eq!(
            net.call(client(1), server(1), None, CallClass::Normal, Request::Ping).unwrap_err(),
            DfsError::Unreachable
        );
        net.set_crashed(server(1), false);
        assert!(net.call(client(1), server(1), None, CallClass::Normal, Request::Ping).is_ok());
    }

    #[test]
    fn auth_required_rejects_unauthenticated() {
        let net = Network::new(SimClock::new(), 0);
        net.register(
            server(1),
            Arc::new(Echo),
            PoolConfig { require_auth: true, ..PoolConfig::default() },
        );
        let r = net.call(client(1), server(1), None, CallClass::Normal, Request::Ping).unwrap();
        assert_eq!(r, Response::Err(DfsError::AuthenticationFailed));
        // With a valid ticket the call goes through.
        net.auth().add_user(7, 1234);
        let ticket = net.auth().login(7, 1234).unwrap();
        let r = net
            .call(client(1), server(1), Some(ticket), CallClass::Normal, Request::Ping)
            .unwrap();
        assert_eq!(r, Response::Ok);
    }

    #[test]
    fn forged_ticket_is_rejected() {
        let net = Network::new(SimClock::new(), 0);
        net.register(
            server(1),
            Arc::new(Echo),
            PoolConfig { require_auth: true, ..PoolConfig::default() },
        );
        let forged = Ticket { user: 0, session: 42, expires: dfs_types::Timestamp(u64::MAX) };
        let r = net
            .call(client(1), server(1), Some(forged), CallClass::Normal, Request::Ping)
            .unwrap();
        assert_eq!(r, Response::Err(DfsError::AuthenticationFailed));
    }

    /// A service that, on the first call, synchronously calls back into
    /// itself (as a revocation-triggered store does, §6.4).
    struct Reentrant {
        net: Network,
        addr: Addr,
        depth: AtomicUsize,
    }
    impl RpcService for Reentrant {
        fn dispatch(&self, ctx: CallContext, req: Request) -> Response {
            match req {
                Request::Ping if ctx.class == CallClass::Normal => {
                    self.depth.fetch_add(1, Ordering::SeqCst);
                    // Call back into ourselves on the revocation class.
                    match self.net.call(
                        self.addr,
                        self.addr,
                        None,
                        CallClass::Revocation,
                        Request::Ping,
                    ) {
                        Ok(r) => r,
                        Err(e) => Response::Err(e),
                    }
                }
                _ => Response::Ok,
            }
        }
    }

    #[test]
    fn dedicated_revocation_pool_avoids_exhaustion_deadlock() {
        // One normal worker: the outer call occupies it; the inner call
        // must run on the dedicated pool or the node deadlocks (§6.4).
        let net = Network::new(SimClock::new(), 0);
        net.set_call_timeout(Duration::from_millis(500));
        let addr = server(1);
        let svc = Arc::new(Reentrant { net: net.clone(), addr, depth: AtomicUsize::new(0) });
        net.register(
            addr,
            svc,
            PoolConfig { workers: 1, revocation_workers: 1, require_auth: false },
        );
        let r = net.call(client(1), addr, None, CallClass::Normal, Request::Ping).unwrap();
        assert_eq!(r, Response::Ok, "dedicated pool lets the inner call proceed");
    }

    #[test]
    fn shared_pool_exhaustion_stalls() {
        // The ablation: no dedicated revocation workers. The inner call
        // queues behind the outer one forever; the timeout fires.
        let net = Network::new(SimClock::new(), 0);
        net.set_call_timeout(Duration::from_millis(300));
        let addr = server(1);
        let svc = Arc::new(Reentrant { net: net.clone(), addr, depth: AtomicUsize::new(0) });
        net.register(
            addr,
            svc,
            PoolConfig { workers: 1, revocation_workers: 0, require_auth: false },
        );
        let r = net.call(client(1), addr, None, CallClass::Normal, Request::Ping);
        assert!(
            matches!(r, Err(DfsError::Timeout) | Ok(Response::Err(DfsError::Timeout))),
            "shared pool must deadlock and time out, got {r:?}"
        );
        assert!(net.stats().timeouts >= 1);
    }

    #[test]
    fn call_timeout_adjustable_after_sharing() {
        // The timeout lives in an atomic: a clone (as held by registered
        // services and test harnesses) can tighten it and every handle
        // observes the change.
        let net = Network::new(SimClock::new(), 0);
        let shared = net.clone();
        shared.set_call_timeout(Duration::from_millis(123));
        assert_eq!(net.call_timeout(), Duration::from_millis(123));
    }

    #[test]
    fn concurrent_calls_through_the_pool() {
        let net = Network::new(SimClock::new(), 0);
        net.register(server(1), Arc::new(Echo), PoolConfig::default());
        let threads: Vec<_> = (0..8)
            .map(|i| {
                let net = net.clone();
                std::thread::spawn(move || {
                    for _ in 0..25 {
                        net.call(client(i), server(1), None, CallClass::Normal, Request::Ping)
                            .unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(net.stats().calls, 200);
    }

    /// Counts dispatches, so duplicate delivery and executed-but-
    /// unanswered calls are observable.
    struct Counting {
        hits: Arc<AtomicUsize>,
    }
    impl RpcService for Counting {
        fn dispatch(&self, _ctx: CallContext, _req: Request) -> Response {
            self.hits.fetch_add(1, Ordering::SeqCst);
            Response::Ok
        }
    }

    #[test]
    fn drop_fault_surfaces_as_timeout_without_delivery() {
        let net = Network::new(SimClock::new(), 0);
        let hits = Arc::new(AtomicUsize::new(0));
        net.register(server(1), Arc::new(Counting { hits: hits.clone() }), PoolConfig::default());
        net.set_fault_schedule(
            FaultSchedule::seeded(7).rule(FaultRule::on(FaultAction::Drop).to(server(1)).limit(1)),
        );
        let r = net.call(client(1), server(1), None, CallClass::Normal, Request::Ping);
        assert_eq!(r.unwrap_err(), DfsError::Timeout);
        assert_eq!(hits.load(Ordering::SeqCst), 0, "a dropped request never dispatches");
        assert_eq!(net.faults_injected(), 1);
        // The rule's budget is spent; the retry goes through.
        assert!(net.call(client(1), server(1), None, CallClass::Normal, Request::Ping).is_ok());
    }

    #[test]
    fn add_fault_rules_appends_without_resetting_armed_rules() {
        let net = Network::new(SimClock::new(), 0);
        net.register(server(1), Arc::new(Echo), PoolConfig::default());
        // Arm a drop-the-3rd-Ping rule and burn one matching call.
        net.set_fault_schedule(
            FaultSchedule::seeded(7)
                .rule(FaultRule::on(FaultAction::Drop).to(server(1)).after(2).limit(1)),
        );
        assert!(net.call(client(1), server(1), None, CallClass::Normal, Request::Ping).is_ok());
        // Mid-run append: a second rule arrives; the first keeps its count.
        net.add_fault_rules(
            FaultSchedule::seeded(0)
                .rule(FaultRule::on(FaultAction::Drop).to(server(1)).after(1).limit(1)),
        );
        assert!(net.call(client(1), server(1), None, CallClass::Normal, Request::Ping).is_ok());
        // Call #3 trips the original rule (seen=1 survived the append;
        // first match wins, so the appended rule never sees this call) …
        assert_eq!(
            net.call(client(1), server(1), None, CallClass::Normal, Request::Ping).unwrap_err(),
            DfsError::Timeout
        );
        // … and call #4 trips the appended rule (its own counter started
        // at zero on append: armed after one post-append unclaimed match).
        assert_eq!(
            net.call(client(1), server(1), None, CallClass::Normal, Request::Ping).unwrap_err(),
            DfsError::Timeout
        );
        assert!(net.call(client(1), server(1), None, CallClass::Normal, Request::Ping).is_ok());
        assert_eq!(net.faults_injected(), 2);
    }

    #[test]
    fn duplicate_fault_dispatches_twice_but_answers_once() {
        let net = Network::new(SimClock::new(), 0);
        let hits = Arc::new(AtomicUsize::new(0));
        net.register(server(1), Arc::new(Counting { hits: hits.clone() }), PoolConfig::default());
        net.set_fault_schedule(
            FaultSchedule::seeded(7).rule(FaultRule::on(FaultAction::Duplicate).limit(1)),
        );
        let r = net.call(client(1), server(1), None, CallClass::Normal, Request::Ping).unwrap();
        assert_eq!(r, Response::Ok);
        // Both deliveries run on the pool; wait for the duplicate too.
        for _ in 0..200 {
            if hits.load(Ordering::SeqCst) == 2 {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(hits.load(Ordering::SeqCst), 2, "duplicate delivery executes twice");
    }

    #[test]
    fn drop_reply_fault_executes_the_side_effect() {
        let net = Network::new(SimClock::new(), 0);
        let hits = Arc::new(AtomicUsize::new(0));
        net.register(server(1), Arc::new(Counting { hits: hits.clone() }), PoolConfig::default());
        net.set_fault_schedule(
            FaultSchedule::seeded(7).rule(FaultRule::on(FaultAction::DropReply).limit(1)),
        );
        let r = net.call(client(1), server(1), None, CallClass::Normal, Request::Ping);
        assert_eq!(r.unwrap_err(), DfsError::Timeout);
        for _ in 0..200 {
            if hits.load(Ordering::SeqCst) == 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(hits.load(Ordering::SeqCst), 1, "the call executed; only the reply was lost");
    }

    #[test]
    fn crash_on_nth_call_downs_the_node() {
        let net = Network::new(SimClock::new(), 0);
        net.register(server(1), Arc::new(Echo), PoolConfig::default());
        net.set_fault_schedule(
            FaultSchedule::seeded(7)
                .rule(FaultRule::on(FaultAction::CrashNode).to(server(1)).after(2).limit(1)),
        );
        for _ in 0..2 {
            assert!(net.call(client(1), server(1), None, CallClass::Normal, Request::Ping).is_ok());
        }
        // The third call trips the crash and fails; so does everything after.
        assert_eq!(
            net.call(client(1), server(1), None, CallClass::Normal, Request::Ping).unwrap_err(),
            DfsError::Unreachable
        );
        assert_eq!(
            net.call(client(1), server(1), None, CallClass::Normal, Request::Ping).unwrap_err(),
            DfsError::Unreachable
        );
        net.set_crashed(server(1), false);
        assert!(net.call(client(1), server(1), None, CallClass::Normal, Request::Ping).is_ok());
    }

    #[test]
    fn stats_since_diffs() {
        let net = Network::new(SimClock::new(), 10);
        net.register(server(1), Arc::new(Echo), PoolConfig::default());
        net.call(client(1), server(1), None, CallClass::Normal, Request::Ping).unwrap();
        let mid = net.stats();
        net.call(client(1), server(1), None, CallClass::Normal, Request::Ping).unwrap();
        let d = net.stats().since(&mid);
        assert_eq!(d.calls, 1);
        assert_eq!(d.by_label["Ping"], 1);
    }
}
