//! Volume administration: clone (on-line backup), move between servers,
//! and lazy replication — §2.1, §3.6, §3.8.
//!
//! Run with: `cargo run --example volume_admin`

use decorum_dfs::types::VolumeId;
use decorum_dfs::Cell;

fn main() {
    let cell = Cell::builder().servers(3).build().expect("cell");
    cell.create_volume(0, VolumeId(10), "user.kazar").expect("volume");

    let client = cell.new_client();
    let root = client.root(VolumeId(10)).expect("root");
    for i in 0..20 {
        let f = client
            .create(root, &format!("paper-{i:02}.tex"), 0o644)
            .expect("create");
        client
            .write(f.fid, 0, format!("contents of draft {i}").as_bytes())
            .expect("write");
    }
    client.fsync(root).expect("sync");

    // ---- Clone: an instant on-line snapshot (§2.1). ------------------
    cell.clone_volume(0, VolumeId(10), VolumeId(11), "user.kazar.backup")
        .expect("clone");
    println!("cloned vol10 -> vol11 (copy-on-write, read-only)");

    // The original keeps evolving; the snapshot is frozen.
    let f = client.lookup(root, "paper-00.tex").expect("lookup");
    client.write(f.fid, 0, b"HEAVILY REVISED").expect("write");

    let snap_client = cell.new_client();
    let snap_root = snap_client.root(VolumeId(11)).expect("snap root");
    let snap_f = snap_client
        .lookup(snap_root, "paper-00.tex")
        .expect("snap lookup");
    let frozen = snap_client.read(snap_f.fid, 0, 64).expect("snap read");
    println!(
        "snapshot still reads: {:?}",
        String::from_utf8_lossy(&frozen)
    );
    assert_eq!(frozen, b"contents of draft 0");

    // ---- Move: rebalance vol10 onto server 2 (§3.6). -----------------
    cell.move_volume(0, 1, VolumeId(10)).expect("move");
    println!(
        "moved vol10 to {:?}; VLDB now says {:?}",
        cell.server(1).id(),
        cell.vldb().lookup(VolumeId(10)).expect("vldb")
    );
    // The client keeps working with the same fids, transparently.
    assert_eq!(
        client.read(f.fid, 0, 15).expect("read after move"),
        b"HEAVILY REVISED"
    );

    // ---- Lazy replication onto server 3 (§3.8). ----------------------
    let ten_minutes = 600 * 1_000_000;
    cell.replicate_volume(1, 2, VolumeId(10), ten_minutes)
        .expect("replicate");
    println!("replicating vol10 -> server 3 with a 10-minute bound");

    // Mutate the master, advance simulated time past the bound, tick.
    client.write(f.fid, 0, b"post-replica edit").expect("write");
    client.fsync(f.fid).expect("fsync");
    cell.clock().advance_micros(ten_minutes + 1);
    cell.replication_tick(2).expect("tick");
    println!(
        "replica refreshes shipped: {}",
        cell.server(2).stats().replica_refreshes
    );

    println!("volume administration: OK");
}
