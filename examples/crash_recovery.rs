//! Crash recovery: Episode's fast restart versus the FFS fsck (§2.2).
//!
//! Builds an Episode aggregate and an FFS partition of the same size,
//! runs the same workload on both, crashes both, and compares restart
//! work.
//!
//! Run with: `cargo run --example crash_recovery`

use decorum_dfs::disk::{DiskConfig, SimDisk};
use decorum_dfs::episode::{Episode, FormatParams};
use decorum_dfs::ffs::Ffs;
use decorum_dfs::types::{SimClock, VolumeId};
use decorum_dfs::vfs::{Credentials, PhysicalFs, Vfs};

const BLOCKS: u32 = 64 * 1024; // 256 MiB simulated disks.

fn main() {
    let cred = Credentials::system();

    // ---- Episode ------------------------------------------------------
    let disk = SimDisk::new(DiskConfig::with_blocks(BLOCKS));
    let clock = SimClock::new();
    let ep = Episode::format(disk.clone(), clock.clone(), FormatParams::default())
        .expect("format");
    ep.create_volume(VolumeId(1), "v").expect("volume");
    let vol = PhysicalFs::mount(&*ep, VolumeId(1)).expect("mount");
    let root = vol.root().expect("root");
    for i in 0..200 {
        let f = vol.create(&cred, root, &format!("file{i}"), 0o644).expect("create");
        vol.write(&cred, f.fid, 0, &vec![i as u8; 8192]).expect("write");
    }
    ep.sync_log().expect("group commit");
    // More work that will be interrupted mid-flight.
    for i in 200..220 {
        let _ = vol.create(&cred, root, &format!("file{i}"), 0o644);
    }
    println!("crash! (episode)");
    disk.crash(None);
    disk.power_on();

    disk.reset_stats();
    let (ep2, report) = Episode::open(disk, clock).expect("recover");
    println!(
        "episode restart: scanned {} log blocks, redid {} updates, undid {}, \
         simulated disk time {:.1} ms",
        report.scanned_blocks,
        report.updates_redone,
        report.updates_undone,
        report.disk_busy_us as f64 / 1000.0
    );
    let salvage = ep2.salvage().expect("salvage");
    assert!(salvage.is_clean(), "recovered aggregate must be consistent");
    let vol2 = PhysicalFs::mount(&*ep2, VolumeId(1)).expect("remount");
    let listed = vol2.readdir(&cred, vol2.root().unwrap()).expect("readdir");
    println!("episode survived with {} files, salvager clean", listed.len());

    // ---- FFS ------------------------------------------------------------
    let disk = SimDisk::new(DiskConfig::with_blocks(BLOCKS));
    let fs = Ffs::format(disk.clone(), SimClock::new(), VolumeId(1)).expect("format");
    let root = fs.root().expect("root");
    for i in 0..200 {
        let f = fs.create(&cred, root, &format!("file{i}"), 0o644).expect("create");
        fs.write(&cred, f.fid, 0, &vec![i as u8; 8192]).expect("write");
    }
    println!("crash! (ffs)");
    disk.crash(None);
    disk.power_on();
    disk.reset_stats();
    let (_fs2, fsck) = Ffs::open(disk, SimClock::new(), VolumeId(1)).expect("fsck");
    println!(
        "ffs restart: fsck scanned {} inodes / {} blocks, fixed {} bitmap bits, \
         simulated disk time {:.1} ms",
        fsck.inodes_scanned,
        fsck.blocks_scanned,
        fsck.bitmap_fixes,
        fsck.disk_busy_us as f64 / 1000.0
    );

    println!(
        "\nrestart cost ratio (ffs fsck / episode log replay): {:.1}x",
        fsck.disk_busy_us as f64 / report.disk_busy_us.max(1) as f64
    );
    println!("crash recovery demo: OK");
}
