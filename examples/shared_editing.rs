//! Shared editing: the paper's §5.5 synchronization example, plus the
//! byte-range partitioning that AFS could not do (§5.4).
//!
//! Two cache managers and a *local* user on the file server all touch
//! the same file; typed tokens keep every view coherent.
//!
//! Run with: `cargo run --example shared_editing`

use decorum_dfs::types::{ByteRange, VolumeId};
use decorum_dfs::vfs::{Credentials, Vfs};
use decorum_dfs::Cell;

fn main() {
    let cell = Cell::builder().servers(1).build().expect("cell");
    cell.create_volume(0, VolumeId(1), "shared").expect("volume");

    let remote_a = cell.new_client();
    let remote_b = cell.new_client();

    let root = remote_a.root(VolumeId(1)).expect("root");
    let file = remote_a.create(root, "paper.tex", 0o666).expect("create");

    // --- The §5.5 example: remote writer, then a local writer. -------
    remote_a
        .write(file.fid, 0, b"remote draft v1")
        .expect("remote write");

    // A process on the server node itself (not through any cache
    // manager) writes via the glue layer: its token acquisition revokes
    // the remote client's write token first.
    let local = cell.server(0).local_volume(VolumeId(1)).expect("local mount");
    let cred = Credentials::system();
    assert_eq!(
        local.read(&cred, file.fid, 0, 64).expect("local read"),
        b"remote draft v1",
        "local user sees the remote client's unflushed write"
    );
    local
        .write(&cred, file.fid, 0, b"local edit   v2")
        .expect("local write");

    // The remote clients observe the local edit immediately.
    assert_eq!(
        remote_b.read(file.fid, 0, 64).expect("remote read"),
        b"local edit   v2"
    );
    println!("local/remote single-system semantics: OK");

    // --- Byte-range partitioning (§5.4). ------------------------------
    // A and B edit disjoint halves of a large file; neither ever ships
    // the file or loses its tokens to the other.
    let big = remote_a.create(root, "dataset.bin", 0o666).expect("create big");
    remote_a
        .write(big.fid, 0, &vec![0u8; 256 * 1024])
        .expect("lay out");
    remote_a.fsync(big.fid).expect("fsync");

    let half = 128 * 1024;
    remote_a
        .acquire_data_token(big.fid, ByteRange::new(0, half), true)
        .expect("A claims first half");
    remote_b
        .acquire_data_token(big.fid, ByteRange::new(half, 2 * half), true)
        .expect("B claims second half");

    let before = cell.net().stats();
    for i in 0..200u64 {
        remote_a.write(big.fid, (i * 97) % (half - 64), &[0xA; 64]).unwrap();
        remote_b
            .write(big.fid, half + (i * 97) % (half - 64), &[0xB; 64])
            .unwrap();
    }
    let delta = cell.net().stats().since(&before);
    println!(
        "400 disjoint writes: {} RPCs, {} bytes on the wire (the file is 262144 bytes)",
        delta.calls, delta.bytes
    );
    assert!(delta.bytes < 256 * 1024, "no whole-file ping-pong");

    // Each side still sees its own and (after handoff) the other's data.
    let a_view = remote_a.read(big.fid, 0, 64).unwrap();
    assert_eq!(a_view, vec![0xA; 64]);
    let b_view = remote_b.read(big.fid, half, 64).unwrap();
    assert_eq!(b_view, vec![0xB; 64]);

    println!("byte-range sharing: OK");
}
