//! Quickstart: build a cell, create a volume, share a file between two
//! clients with strict single-system UNIX semantics.
//!
//! Run with: `cargo run --example quickstart`

use decorum_dfs::types::VolumeId;
use decorum_dfs::Cell;

fn main() {
    // A cell: one file server over an Episode aggregate, three VLDB
    // replicas, a KDC — all on a simulated network.
    let cell = Cell::builder().servers(1).build().expect("cell");
    cell.create_volume(0, VolumeId(1), "user.demo").expect("volume");

    let alice = cell.new_client();
    let bob = cell.new_client();

    let root = alice.root(VolumeId(1)).expect("root");
    println!("root fid: {root}");

    // Alice builds a small tree.
    let dir = alice.mkdir(root, "docs", 0o755).expect("mkdir");
    let file = alice.create(dir.fid, "draft.txt", 0o644).expect("create");
    alice
        .write(file.fid, 0, b"tokens make caching safe")
        .expect("write");
    println!("alice wrote {} bytes to {}", 24, file.fid);

    // Bob sees it immediately: Alice's write token is revoked, her
    // dirty pages stored back, and Bob's read fetches fresh data.
    let seen = bob.read(file.fid, 0, 64).expect("read");
    println!("bob reads: {:?}", String::from_utf8_lossy(&seen));
    assert_eq!(seen, b"tokens make caching safe");

    // Repeated reads at Bob are free: he now holds a data read token.
    let before = cell.net().stats();
    for _ in 0..100 {
        bob.read(file.fid, 0, 64).expect("cached read");
    }
    let delta = cell.net().stats().since(&before);
    println!("100 cached reads cost {} RPCs", delta.calls);
    assert_eq!(delta.calls, 0);

    // Directory lookups are cached too (§4.3).
    let before = cell.net().stats();
    for _ in 0..100 {
        bob.lookup(dir.fid, "draft.txt").expect("cached lookup");
    }
    println!(
        "100 cached lookups cost {} RPCs",
        cell.net().stats().since(&before).calls
    );

    println!("\n{}", cell.render_server_structure());
    println!("quickstart OK");
}
