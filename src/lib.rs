//! # decorum-dfs
//!
//! A from-scratch Rust reproduction of the **DEcorum file system**
//! (Kazar et al., USENIX Summer 1990) — the architecture that shipped as
//! DCE/DFS, with the Episode journaling file system underneath.
//!
//! The crate re-exports every subsystem:
//!
//! * [`types`] — identifiers, errors, rights/ACLs, byte ranges, the
//!   simulated clock;
//! * [`disk`] — the simulated block device (cost model, crash
//!   injection);
//! * [`journal`] — Episode's buffer package + write-ahead log (§2.2);
//! * [`vfs`] — the VFS / VFS+ interface definitions (§1, §3.3);
//! * [`episode`] — the Episode physical file system: anodes, volumes,
//!   aggregates, clones, ACLs, fast restart (§2);
//! * [`ffs`] — the Berkeley-FFS-style baseline (synchronous metadata,
//!   full-scan fsck);
//! * [`rpc`] — the NCS-style RPC substrate with two-way calls and
//!   Kerberos-style authentication (§3.7);
//! * [`token`] — the typed-token manager and compatibility relation
//!   (§3.1, §5, Figure 3);
//! * [`server`] — the protocol exporter, glue layer, host model, VLDB,
//!   volume server, and replication server (§3);
//! * [`client`] — the cache manager: resource/cache/directory/vnode
//!   layers, two-lock deadlock avoidance, serialization stamps (§4, §6);
//! * [`baselines`] — NFS-style and AFS-style comparators (§5.4);
//! * [`core`] — [`Cell`]: everything assembled;
//! * [`fleet`] — [`Fleet`]: volume-sharded multi-server cluster with
//!   cross-server request routing and live volume migration (§2.1).
//!
//! # Quick start
//!
//! ```
//! use decorum_dfs::Cell;
//! use decorum_dfs::types::VolumeId;
//!
//! let cell = Cell::builder().servers(1).build().unwrap();
//! cell.create_volume(0, VolumeId(1), "home").unwrap();
//!
//! let alice = cell.new_client();
//! let bob = cell.new_client();
//!
//! let root = alice.root(VolumeId(1)).unwrap();
//! let file = alice.create(root, "notes.txt", 0o644).unwrap();
//! alice.write(file.fid, 0, b"single-system semantics").unwrap();
//!
//! // Bob sees Alice's write as soon as her write() returned — no
//! // fsync, no close — because the server revoked her write token.
//! assert_eq!(bob.read(file.fid, 0, 64).unwrap(), b"single-system semantics");
//! ```

pub use dfs_baselines as baselines;
pub use dfs_client as client;
pub use dfs_core as core;
pub use dfs_disk as disk;
pub use dfs_episode as episode;
pub use dfs_ffs as ffs;
pub use dfs_fleet as fleet;
pub use dfs_journal as journal;
pub use dfs_rpc as rpc;
pub use dfs_server as server;
pub use dfs_token as token;
pub use dfs_types as types;
pub use dfs_vfs as vfs;

pub use dfs_client::{CacheManager, OpenMode};
pub use dfs_core::{Cell, CellBuilder};
pub use dfs_episode::Episode;
pub use dfs_fleet::Fleet;
pub use dfs_server::FileServer;
pub use dfs_token::TokenManager;
