//! Scenario-engine integration tests (`dfs-bench::scenario`).
//!
//! Pins the driver's three contracts: (1) same seed ⇒ identical op
//! sequence, per-class counts, and final state (the deterministic
//! block is byte-identical); (2) a mixed shared-file workload passes
//! the lost-update and cross-client-agreement invariants; (3) timeline
//! events — fault arming included — fire at their declared op-count
//! offsets.

use dfs_bench::scenario::{ClassSpec, Event, OpClass, Phase, Scenario, Topology};
use dfs_rpc::{FaultAction, FaultRule, FaultSchedule};

/// A small mixed workload: 8 clients over 2 volumes, shared write set
/// (4 clients per group), coherent reads, metadata churn, scans.
fn mixed(seed: u64) -> Scenario {
    Scenario::new(
        "test_mixed",
        seed,
        Topology::new(2, 8, 2).latency_us(20).no_flusher(),
        vec![
            Phase::new(
                "warm",
                12,
                vec![
                    ClassSpec::new(OpClass::Write, 3, 2).sharing(4).fsync_every(8),
                    ClassSpec::new(OpClass::Read, 3, 2).sharing(2),
                ],
            ),
            Phase::new(
                "mixed",
                20,
                vec![
                    ClassSpec::new(OpClass::Write, 2, 2).sharing(4),
                    ClassSpec::new(OpClass::Read, 4, 2).sharing(2),
                    ClassSpec::new(OpClass::MetadataChurn, 1, 3).sharing(2),
                    ClassSpec::new(OpClass::StreamingScan, 1, 1).sharing(4),
                ],
            ),
        ],
    )
}

#[test]
fn same_seed_replays_identical_ops_and_state() {
    let a = mixed(0xA11CE).run();
    let b = mixed(0xA11CE).run();
    assert_eq!(a.op_digest, b.op_digest, "op streams must replay");
    assert_eq!(a.class_ops, b.class_ops, "per-class op counts must replay");
    assert_eq!(a.state_digest, b.state_digest, "final contents must replay");
    assert_eq!(
        a.deterministic_json(),
        b.deterministic_json(),
        "the deterministic JSON block must be byte-identical"
    );
    assert_eq!(a.total_ops, 8 * (12 + 20));
}

#[test]
fn different_seeds_diverge() {
    let a = mixed(1).run();
    let b = mixed(2).run();
    assert_ne!(a.op_digest, b.op_digest, "different seeds must draw different streams");
}

#[test]
fn mixed_workload_passes_all_invariants() {
    let r = mixed(7).run();
    assert_eq!(r.failed_ops, 0, "no op may fail in a fault-free run");
    assert_eq!(r.lost_updates, 0, "fresh-client read-back must see every acked write");
    assert_eq!(r.agreement_failures, 0, "group members must agree on shared files");
    assert_eq!(r.torn_reads, 0, "page writes must be atomic under tokens");
    assert_eq!(r.scan_mismatches, 0, "prefilled content must survive");
    assert_eq!(r.ambiguous_regions, 0);
    assert!(r.clean());
    // The workload actually exercised every class.
    assert!(r.class_ops.iter().all(|&n| n > 0), "all classes drawn: {:?}", r.class_ops);
    // And the report renders valid JSON.
    dfs_bench::json::validate(&r.to_json()).expect("report JSON");
}

#[test]
fn fault_timeline_arms_at_declared_op_offsets() {
    // Every op is a write with an immediate fsync, so `StoreData`
    // traffic flows for the whole run and the armed rule is guaranteed
    // to see calls as soon as it fires.
    let drop_stores = FaultSchedule::seeded(3)
        .rule(FaultRule::on(FaultAction::Drop).label("StoreData").limit(2));
    let sc = Scenario::new(
        "test_faults",
        11,
        Topology::new(1, 4, 1).latency_us(20).no_flusher(),
        vec![Phase::new(
            "load",
            30,
            vec![ClassSpec::new(OpClass::Write, 1, 2).sharing(1).fsync_every(1)],
        )],
    )
    .at(40, Event::ArmFaults(drop_stores))
    .at(80, Event::ClearFaults);
    let r = sc.run();

    assert_eq!(r.events.len(), 2, "both timeline events fired: {:?}", r.events);
    assert_eq!(r.events[0].event, "arm_faults");
    assert_eq!(r.events[0].at_op, 40);
    assert_eq!(r.events[1].event, "clear_faults");
    assert_eq!(r.events[1].at_op, 80);
    for e in &r.events {
        assert!(e.ok, "event must succeed: {e:?}");
        assert!(e.fired_at >= e.at_op, "never early: {e:?}");
        // At most one in-flight op per client can slip between the
        // crossing and the fire.
        assert!(e.fired_at <= e.at_op + 4, "fires at the declared offset: {e:?}");
    }
    assert_eq!(r.faults_injected, 2, "the armed rule injected its full budget");
    // A dropped StoreData surfaces as a timeout the client retries; the
    // run still ends clean.
    assert!(r.clean(), "invariants: {}", r.invariants_json());
}

#[test]
fn crash_restart_and_move_fire_in_timeline_order() {
    let sc = Scenario::new(
        "test_events",
        5,
        Topology::new(2, 6, 2).latency_us(20).no_flusher(),
        vec![Phase::new(
            "load",
            30,
            vec![
                ClassSpec::new(OpClass::Write, 1, 2).sharing(3).fsync_every(4),
                ClassSpec::new(OpClass::Read, 1, 2).sharing(3),
            ],
        )],
    )
    .at(40, Event::CrashServer(1))
    .at(60, Event::RestartServer { slot: 1, grace_us: 1_000 })
    .at(120, Event::MoveVolume { volume: 1, dst_slot: 1 });
    let r = sc.run();

    let names: Vec<&str> = r.events.iter().map(|e| e.event).collect();
    assert_eq!(names, ["crash_server", "restart_server", "move_volume"]);
    assert!(r.events.iter().all(|e| e.ok), "all events applied: {:?}", r.events);
    // Ops may fail while the server is down (retry budgets expire),
    // but no *acknowledged* write may be lost and caches must agree.
    assert!(r.coherent(), "coherence invariants: {}", r.invariants_json());
    assert_eq!(r.lost_updates, 0);
    assert_eq!(r.agreement_failures, 0);
    assert!(r.server_moves >= 1, "the volume actually moved");
}
