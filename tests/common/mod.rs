//! Shared setup for the integration suites: the cell/fleet/client
//! boilerplate every `tests/*.rs` file used to hand-roll. Each suite
//! pulls this in with `mod common;` and uses the subset it needs.

#![allow(dead_code)] // each suite uses a different subset

use std::sync::Arc;

use decorum_dfs::client::{CacheManager, WritebackConfig};
use decorum_dfs::types::{Fid, VolumeId};
use decorum_dfs::{Cell, Fleet};

/// The volume every helper provisions: id 1, name "v", on slot 0.
pub const VOL: VolumeId = VolumeId(1);

/// An `n`-server cell with [`VOL`] created on server 0.
pub fn cell(n: u32) -> Cell {
    let cell = Cell::builder().servers(n).build().unwrap();
    cell.create_volume(0, VOL, "v").unwrap();
    cell
}

/// A single-server cell with [`VOL`] — the most common fixture.
pub fn one_server_cell() -> Cell {
    cell(1)
}

/// An `n`-server fleet with [`VOL`] created (lands on slot 0).
pub fn fleet(n: u32) -> Fleet {
    let fleet = Fleet::start(n).unwrap();
    fleet.create_volume(VOL, "v").unwrap();
    fleet
}

/// A client with the background flusher disabled, so every store-back
/// happens exactly where the test triggers it — the deterministic
/// choice for fault schedules and dirty-page scenarios.
pub fn no_flush_client(cell: &Cell) -> Arc<CacheManager> {
    cell.new_client_writeback(WritebackConfig { flusher: false, ..Default::default() })
}

/// Creates `name` under [`VOL`]'s root, writes `data` at offset 0, and
/// fsyncs it to durability. Returns the new file's fid.
pub fn durable_file(client: &CacheManager, name: &str, data: &[u8]) -> Fid {
    let root = client.root(VOL).unwrap();
    let f = client.create(root, name, 0o644).unwrap();
    client.write(f.fid, 0, data).unwrap();
    client.fsync(f.fid).unwrap();
    f.fid
}
