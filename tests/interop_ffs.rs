//! The §1 interoperability goal: "if a file server is installed on a
//! host running UNIX, the server can export file systems that were
//! already in use on that host."
//!
//! The DEcorum protocol exporter is started over the *FFS baseline* —
//! a stand-in for the vendor file system — and DEcorum cache managers
//! use it with full token coherence. Volume-level extensions degrade
//! gracefully (§3.3: "it may be possible to provide some subset of
//! DEcorum functionality").

use decorum_dfs::client::MemCache;
use decorum_dfs::disk::{DiskConfig, SimDisk};
use decorum_dfs::ffs::Ffs;
use decorum_dfs::rpc::{Addr, CallClass, Network, PoolConfig, Request, Response};
use decorum_dfs::server::{FileServer, VldbReplica};
use decorum_dfs::types::{ClientId, ServerId, SimClock, VolumeId};
use decorum_dfs::vfs::{Credentials, Vfs};
use decorum_dfs::CacheManager;
use std::sync::Arc;

fn ffs_cell() -> (Network, Arc<Ffs>, Arc<FileServer>) {
    let clock = SimClock::new();
    let net = Network::new(clock.clone(), 500);
    net.register(Addr::Vldb(0), VldbReplica::new(), PoolConfig::default());
    // A "native" file system that predates DEcorum on this host.
    let disk = SimDisk::new(DiskConfig::with_blocks(16384));
    let ffs = Ffs::format(disk, clock, VolumeId(1)).unwrap();
    // Pre-existing local content, created before the exporter starts.
    let cred = Credentials::system();
    let root = ffs.root().unwrap();
    let f = ffs.create(&cred, root, "preexisting.txt", 0o644).unwrap();
    ffs.write(&cred, f.fid, 0, b"was already here").unwrap();

    let srv = FileServer::start(
        net.clone(),
        ServerId(1),
        ffs.clone(),
        vec![Addr::Vldb(0)],
        PoolConfig::default(),
    )
    .unwrap();
    (net, ffs, srv)
}

fn client(net: &Network, n: u32) -> Arc<CacheManager> {
    CacheManager::start(net.clone(), ClientId(n), vec![Addr::Vldb(0)], Arc::new(MemCache::new()))
}

#[test]
fn native_files_are_visible_remotely() {
    let (net, _ffs, _srv) = ffs_cell();
    let cm = client(&net, 1);
    let root = cm.root(VolumeId(1)).unwrap();
    let f = cm.lookup(root, "preexisting.txt").unwrap();
    assert_eq!(cm.read(f.fid, 0, 32).unwrap(), b"was already here");
}

#[test]
fn remote_and_local_ffs_access_synchronize() {
    // The whole point of the glue layer at the vnode boundary (§5.1):
    // local users of the native FS and remote DEcorum clients see one
    // coherent file system.
    let (net, ffs, srv) = ffs_cell();
    let cm = client(&net, 1);
    let root = cm.root(VolumeId(1)).unwrap();
    let f = cm.create(root, "shared", 0o666).unwrap();
    cm.write(f.fid, 0, b"from the cache manager").unwrap();

    // Local access goes through the glue layer, which revokes the
    // client's write token before reading.
    let local = srv.local_volume(VolumeId(1)).unwrap();
    let cred = Credentials::system();
    assert_eq!(
        local.read(&cred, f.fid, 0, 64).unwrap(),
        b"from the cache manager"
    );
    local.write(&cred, f.fid, 0, b"from the local kernel!").unwrap();
    assert_eq!(cm.read(f.fid, 0, 64).unwrap(), b"from the local kernel!");
    let _ = ffs;
}

#[test]
fn tokens_work_identically_over_ffs() {
    let (net, _ffs, _srv) = ffs_cell();
    let a = client(&net, 1);
    let b = client(&net, 2);
    let root = a.root(VolumeId(1)).unwrap();
    let f = a.create(root, "tokened", 0o666).unwrap();
    a.write(f.fid, 0, &vec![1u8; 8192]).unwrap();
    // Cached reads are free even though the backing store is FFS.
    b.read(f.fid, 0, 4096).unwrap();
    let before = net.stats();
    for _ in 0..20 {
        b.read(f.fid, 0, 4096).unwrap();
    }
    assert_eq!(net.stats().since(&before).calls, 0);
    // Writes still invalidate.
    a.write(f.fid, 0, &[2u8; 64]).unwrap();
    assert_eq!(b.read(f.fid, 0, 64).unwrap(), vec![2u8; 64]);
}

#[test]
fn volume_extensions_degrade_gracefully() {
    // §3.3: the exporter offers the VFS+ extensions, but a conventional
    // file system may implement only a subset. Clones fail cleanly on
    // FFS; the error is reported, not a crash.
    let (net, _ffs, _srv) = ffs_cell();
    let resp = net
        .call(
            Addr::Client(ClientId(9)),
            Addr::Server(ServerId(1)),
            None,
            CallClass::Normal,
            Request::VolClone { src: VolumeId(1), clone: VolumeId(2), name: "snap".into() },
        )
        .unwrap();
    assert!(matches!(resp, Response::Err(_)), "clone on FFS must fail cleanly");
    // ACL writes likewise.
    let cm = client(&net, 3);
    let root = cm.root(VolumeId(1)).unwrap();
    let f = cm.create(root, "noacl", 0o644).unwrap();
    assert!(cm.set_acl(f.fid, &decorum_dfs::types::Acl::unix_default(1)).is_err());
    // But reading the (empty) ACL works, so clients can detect support.
    assert!(cm.get_acl(f.fid).unwrap().is_empty());
}
