//! Workspace integration tests: whole-cell scenarios spanning every
//! crate — servers, clients, tokens, volumes, authentication, crashes.

use decorum_dfs::types::{ByteRange, DfsError, SimClock, VolumeId};
use decorum_dfs::vfs::SetAttrs;
use decorum_dfs::{Cell, OpenMode};

mod common;

#[test]
fn multi_server_cell_with_many_clients() {
    let cell = Cell::builder().servers(3).build().unwrap();
    cell.create_volume(0, VolumeId(1), "vol-a").unwrap();
    cell.create_volume(1, VolumeId(2), "vol-b").unwrap();
    cell.create_volume(2, VolumeId(3), "vol-c").unwrap();

    let clients: Vec<_> = (0..4).map(|_| cell.new_client()).collect();
    for (i, vol) in [VolumeId(1), VolumeId(2), VolumeId(3)].iter().enumerate() {
        let root = clients[i].root(*vol).unwrap();
        let f = clients[i].create(root, "data", 0o666).unwrap();
        clients[i].write(f.fid, 0, format!("volume {}", vol.0).as_bytes()).unwrap();
        // Every other client can read it through its own path.
        for c in &clients {
            let got = c.read(f.fid, 0, 32).unwrap();
            assert_eq!(got, format!("volume {}", vol.0).as_bytes());
        }
    }
}

#[test]
fn authenticated_cell_end_to_end() {
    let cell = Cell::builder().servers(1).require_auth(true).build().unwrap();
    cell.add_user(0, 42); // The cell administrator (superuser).
    cell.add_user(100, 1111);
    cell.add_user(200, 2222);
    cell.admin_login(0, 42).unwrap();
    cell.create_volume(0, VolumeId(1), "secure").unwrap();

    let alice = cell.new_client();
    let bob = cell.new_client();
    // Without login, nothing works.
    assert!(alice.root(VolumeId(1)).is_err());
    alice.login(100, 1111).unwrap();
    bob.login(200, 2222).unwrap();

    let root = alice.root(VolumeId(1)).unwrap();
    // Root is owned by the system; open it up first via a system client.
    let admin = cell.new_client();
    assert!(admin.root(VolumeId(1)).is_err(), "admin must authenticate too");
    admin.login(0, 42).unwrap();
    admin.setattr(root, &SetAttrs { mode: Some(0o777), ..Default::default() }).unwrap();

    let f = alice.create(root, "alice-only", 0o600).unwrap();
    alice.write(f.fid, 0, b"private").unwrap();
    alice.fsync(f.fid).unwrap();
    assert_eq!(bob.read(f.fid, 0, 16).unwrap_err(), DfsError::PermissionDenied);

    // ACLs beat mode bits: grant bob's user id read access.
    let mut acl = decorum_dfs::types::Acl::unix_default(100);
    acl.push(decorum_dfs::types::AclEntry::allow(
        decorum_dfs::types::Principal::User(200),
        decorum_dfs::types::Rights::READ,
    ));
    alice.set_acl(f.fid, &acl).unwrap();
    assert_eq!(bob.read(f.fid, 0, 7).unwrap(), b"private");
}

#[test]
fn server_crash_and_restart_preserves_committed_state() {
    use decorum_dfs::episode::Episode;
    use decorum_dfs::rpc::PoolConfig;
    use decorum_dfs::FileServer;

    let cell = common::one_server_cell();
    let c = cell.new_client();
    let root = c.root(VolumeId(1)).unwrap();
    let f = c.create(root, "durable", 0o644).unwrap();
    c.write(f.fid, 0, b"must survive").unwrap();
    c.fsync(f.fid).unwrap();

    // Crash the server: network node down, disk loses its cache.
    let addr = decorum_dfs::rpc::Addr::Server(cell.server(0).id());
    let disk = cell.server(0).clone();
    let ep_disk = {
        // Reach the disk through a fresh mount of the same Episode.
        // (The cell owns the Episode; we crash via its disk handle.)
        let _ = &disk;
        cell.server(0)
    };
    let _ = ep_disk;
    cell.net().set_crashed(addr, true);

    // Client calls now fail fast as unreachable.
    let fresh = cell.new_client();
    assert!(fresh.getattr(f.fid).is_err());

    // "Reboot": bring the node back. (The Episode instance survives in
    // memory here; the dedicated disk-level crash tests live in the
    // episode crate. This test checks the cell-level failure path.)
    cell.net().set_crashed(addr, false);
    assert_eq!(c.read(f.fid, 0, 16).unwrap(), b"must survive");

    // Full dress rehearsal of a cold restart on a separate stage:
    let clock = SimClock::new();
    let disk = decorum_dfs::disk::SimDisk::new(decorum_dfs::disk::DiskConfig::with_blocks(16384));
    let ep = Episode::format(disk.clone(), clock.clone(), Default::default()).unwrap();
    ep.create_volume(VolumeId(9), "w").unwrap();
    {
        use decorum_dfs::vfs::{Credentials, PhysicalFs};
        let v = PhysicalFs::mount(&*ep, VolumeId(9)).unwrap();
        let root = v.root().unwrap();
        let f = v.create(&Credentials::system(), root, "x", 0o644).unwrap();
        v.write(&Credentials::system(), f.fid, 0, b"cold").unwrap();
        v.fsync(&Credentials::system(), f.fid).unwrap();
    }
    disk.crash(None);
    disk.power_on();
    let (ep2, report) = Episode::open(disk, clock).unwrap();
    assert!(!report.formatted);
    // A new file server over the recovered aggregate serves the data.
    let net = decorum_dfs::rpc::Network::new(SimClock::new(), 0);
    net.register(
        decorum_dfs::rpc::Addr::Vldb(0),
        decorum_dfs::server::VldbReplica::new(),
        PoolConfig::default(),
    );
    let srv = FileServer::start(
        net.clone(),
        decorum_dfs::types::ServerId(9),
        ep2,
        vec![decorum_dfs::rpc::Addr::Vldb(0)],
        PoolConfig::default(),
    )
    .unwrap();
    assert_eq!(srv.id().0, 9);
    let cm = decorum_dfs::CacheManager::start(
        net,
        decorum_dfs::types::ClientId(50),
        vec![decorum_dfs::rpc::Addr::Vldb(0)],
        std::sync::Arc::new(decorum_dfs::client::MemCache::new()),
    );
    let root = cm.root(VolumeId(9)).unwrap();
    let got = cm.lookup(root, "x").unwrap();
    assert_eq!(cm.read(got.fid, 0, 8).unwrap(), b"cold");
}

#[test]
fn open_modes_and_locks_across_the_cell() {
    let cell = common::one_server_cell();
    let a = cell.new_client();
    let b = cell.new_client();
    let root = a.root(VolumeId(1)).unwrap();
    let f = a.create(root, "bin", 0o755).unwrap();
    a.write(f.fid, 0, b"#!exe").unwrap();

    a.open(f.fid, OpenMode::Execute).unwrap();
    assert_eq!(b.open(f.fid, OpenMode::Write).unwrap_err(), DfsError::OpenConflict);
    a.close(f.fid, OpenMode::Execute).unwrap();
    b.open(f.fid, OpenMode::Write).unwrap();
    b.close(f.fid, OpenMode::Write).unwrap();

    a.lock(f.fid, ByteRange::new(0, 10), true).unwrap();
    assert_eq!(
        b.lock(f.fid, ByteRange::new(5, 15), true).unwrap_err(),
        DfsError::LockConflict
    );
    a.unlock(f.fid, ByteRange::new(0, 10)).unwrap();
    b.lock(f.fid, ByteRange::new(5, 15), true).unwrap();
}

#[test]
fn diskless_and_disk_clients_interoperate() {
    let cell = common::one_server_cell();
    let diskless = cell.new_client();
    let disky = cell.new_disk_client(1024);
    let root = diskless.root(VolumeId(1)).unwrap();
    let f = diskless.create(root, "both", 0o666).unwrap();
    diskless.write(f.fid, 0, &vec![0xAB; 20_000]).unwrap();
    assert_eq!(disky.read(f.fid, 10_000, 100).unwrap(), vec![0xAB; 100]);
    disky.write(f.fid, 0, b"disk-cached").unwrap();
    assert_eq!(diskless.read(f.fid, 0, 11).unwrap(), b"disk-cached");
}

#[test]
fn snapshot_while_writing() {
    // On-line backup (§2.1): a clone taken mid-workload is a consistent
    // point-in-time image while the original keeps changing.
    let cell = Cell::builder().servers(1).build().unwrap();
    cell.create_volume(0, VolumeId(1), "live").unwrap();
    let c = cell.new_client();
    let root = c.root(VolumeId(1)).unwrap();
    let f = c.create(root, "counter", 0o666).unwrap();
    for i in 0..10u64 {
        c.write(f.fid, 0, &i.to_le_bytes()).unwrap();
    }
    cell.clone_volume(0, VolumeId(1), VolumeId(2), "live.backup").unwrap();
    for i in 10..20u64 {
        c.write(f.fid, 0, &i.to_le_bytes()).unwrap();
    }
    let snap = cell.new_client();
    let sroot = snap.root(VolumeId(2)).unwrap();
    let sf = snap.lookup(sroot, "counter").unwrap();
    let frozen = u64::from_le_bytes(snap.read(sf.fid, 0, 8).unwrap().try_into().unwrap());
    assert_eq!(frozen, 9, "snapshot holds the value at clone time");
    let live = u64::from_le_bytes(c.read(f.fid, 0, 8).unwrap().try_into().unwrap());
    assert_eq!(live, 19);
}

#[test]
fn delete_refused_while_remotely_open() {
    // §5.4: "a virtual file system can assure itself that a file about
    // to be deleted has no remote users, by requesting an open token for
    // exclusive writing on the file."
    let cell = common::one_server_cell();
    let a = cell.new_client();
    let b = cell.new_client();
    let root = a.root(VolumeId(1)).unwrap();
    let f = a.create(root, "inuse", 0o666).unwrap();
    b.open(f.fid, OpenMode::Execute).unwrap();
    assert_eq!(
        a.remove(root, "inuse").unwrap_err(),
        DfsError::OpenConflict,
        "delete must be refused while another client executes the file"
    );
    b.close(f.fid, OpenMode::Execute).unwrap();
    a.remove(root, "inuse").unwrap();
    assert!(a.lookup(root, "inuse").is_err());
}

#[test]
fn token_handoff_under_simulated_network_partition() {
    // If the holder of a write token is unreachable, the server treats
    // its tokens as returned (host death handling) and the survivor can
    // proceed — availability over a dead client's cache.
    let cell = common::one_server_cell();
    // No background flusher on A: its dirty page must still be unstored
    // when it dies (otherwise the test races the 2 ms flush interval).
    let a = common::no_flush_client(&cell);
    let b = cell.new_client();
    let root = a.root(VolumeId(1)).unwrap();
    let f = a.create(root, "orphaned", 0o666).unwrap();
    a.write(f.fid, 0, b"will be lost").unwrap();
    // A dies silently (unflushed data is lost, as with a crashed host).
    cell.net().set_crashed(decorum_dfs::rpc::Addr::Client(a.id()), true);
    // B can still take the file over; it sees the last stored state.
    b.write(f.fid, 0, b"taken over").unwrap();
    assert_eq!(b.read(f.fid, 0, 16).unwrap(), b"taken over");
}
