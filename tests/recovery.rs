//! Crash-restart recovery pipeline tests: server epochs, the
//! post-restart grace window, token reestablishment, and client
//! failover (ISSUE 5; §2.2 of the paper for the restart-cost claim,
//! Lustre-style epoch reconnection for the token recovery protocol).

use decorum_dfs::types::{DfsError, VolumeId};
use decorum_dfs::Cell;

mod common;

/// The headline scenario: a write-behind client has dirty pages when the
/// server crashes. After the restart the client must detect the new
/// epoch, reestablish its tokens inside the grace window, and replay the
/// dirty pages — no lost update.
#[test]
fn crash_mid_writeback_replays_dirty_pages() {
    let cell = common::one_server_cell();
    // No background flusher: the dirty page must still be unstored at
    // crash time, so the replay is deterministically the client's job.
    let a = common::no_flush_client(&cell);
    let root = a.root(VolumeId(1)).unwrap();
    let fid = common::durable_file(&a, "inflight", b"acked and durable");
    // This update exists only in A's cache when the server dies.
    a.write(fid, 0, b"still dirty in A!").unwrap();
    assert!(a.dirty_pages(fid) > 0, "update must be write-behind");

    cell.crash_server(0);
    let report = cell.restart_server(0, 10_000_000).unwrap();
    assert!(!report.formatted, "restart must recover, not reformat");
    assert_eq!(cell.server(0).epoch(), 2, "epoch bumps on restart");
    assert!(cell.server(0).in_grace(), "grace window opens on restart");

    // A's next server-visible operation runs the whole pipeline:
    // GraceWait -> epoch probe -> reestablish -> dirty-page replay.
    a.create(root, "poke", 0o644).unwrap();
    let st = a.stats();
    assert_eq!(st.recoveries, 1, "exactly one recovery pass");
    assert!(st.grace_waits >= 1, "the gate held A's call until it checked in");
    assert!(st.tokens_reestablished > 0, "A re-registered its token set");
    assert!(st.recovery_replayed_pages > 0, "dirty pages were replayed");

    // A was the only expected host, so its check-in closes the window.
    assert!(!cell.server(0).in_grace(), "grace closes once every host checks in");

    // Zero lost updates: a fresh client reads the replayed bytes.
    let b = cell.new_client();
    assert_eq!(b.read(fid, 0, 32).unwrap(), b"still dirty in A!");
    assert_eq!(a.read(fid, 0, 32).unwrap(), b"still dirty in A!");
}

/// A client that never reconnects must not pin the cell: the grace
/// window closes at its deadline and new clients are admitted, while a
/// *new* host arriving during grace is held off (`GraceWait`).
#[test]
fn new_client_held_off_until_grace_expires() {
    let cell = common::one_server_cell();
    // A touches the server so it lands in the host model (and therefore
    // in the restart's expected set) — then never reconnects.
    let a = cell.new_client();
    common::durable_file(&a, "f", b"pre-crash");

    cell.crash_server(0);
    cell.restart_server(0, 60_000_000).unwrap();
    assert!(cell.server(0).in_grace());

    // A brand-new host gets GraceWait until the window closes; its retry
    // budget runs out long before the 60 s (simulated) deadline and the
    // client reports honest unavailability rather than a retryable
    // timeout.
    let b = cell.new_client();
    assert_eq!(b.root(VolumeId(1)).unwrap_err(), DfsError::Unavailable);
    assert!(b.stats().grace_waits > 0, "B was refused by the recovery gate");
    assert!(b.stats().unavailable_giveups >= 1, "the retry budget was spent");

    // Deadline passes (and A's lease expires with it): grace closes even
    // though A never checked in, and B is admitted.
    cell.clock().advance_secs(61);
    assert!(!cell.server(0).in_grace());
    let root = b.root(VolumeId(1)).unwrap();
    let got = b.lookup(root, "f").unwrap();
    assert_eq!(b.read(got.fid, 0, 16).unwrap(), b"pre-crash");
}

/// Satellite: §3.8 replica promotion. The volume has a read-only
/// replica on a second server; when the primary (and the first VLDB
/// replica) crash, a fresh reader fails over through a surviving VLDB
/// replica to the read-only copy and is served *bounded-stale* reads —
/// every such response carries a nonzero staleness stamp, and the bytes
/// never masquerade as token-backed cache. Writes stay honestly
/// unavailable. When the primary returns, the same client reconciles:
/// reads come back primary-served (stale stamp zero) and writes work.
#[test]
fn location_failover_when_file_server_crashes() {
    let cell = Cell::builder().servers(2).vldb_replicas(2).build().unwrap();
    cell.create_volume(0, VolumeId(1), "v").unwrap();
    let c = cell.new_client();
    let root = c.root(VolumeId(1)).unwrap();
    let fid = common::durable_file(&c, "survivor", b"beyond the crash");

    // Replicate the volume onto server 1 (5 s staleness bound); the
    // replica advertises itself in the VLDB.
    cell.replicate_volume(0, 1, VolumeId(1), 5_000_000).unwrap();

    // The primary AND the first VLDB replica go down: both the replica
    // discovery and the location re-resolution must fail over to the
    // surviving VLDB replica.
    cell.net().set_crashed(decorum_dfs::rpc::Addr::Vldb(0), true);
    cell.crash_server(0);
    cell.clock().advance_secs(1);

    // A fresh reader knows only the fid (no root/lookup RPC needed).
    // Its FetchData gives up on the primary after a couple of attempts
    // and is served by the replica, stale-stamped.
    let b = cell.new_client();
    assert_eq!(b.read(fid, 0, 32).unwrap(), b"beyond the crash");
    let st = b.stats();
    assert!(st.replica_failovers >= 1, "the read failed over to the replica");
    assert!(st.stale_reads >= 1, "the read was served bounded-stale");
    assert!(
        st.max_stale_us >= 1_000_000,
        "staleness stamp reflects the replica's age, got {}",
        st.max_stale_us
    );
    assert!(
        st.max_stale_us <= 5_000_000,
        "staleness stays within the replication bound, got {}",
        st.max_stale_us
    );

    // Stale bytes were served, not cached: nothing in B's cache claims
    // token backing for this file.
    assert_eq!(b.dirty_pages(fid), 0);

    // Writes cannot be served by a read-only replica: the retry budget
    // runs out and the client reports honest unavailability.
    assert!(b.write(fid, 0, b"rejected").is_err());
    assert!(b.stats().unavailable_giveups >= 1, "the write spent its retry budget");

    // The primary returns; B reconciles: its next read is
    // primary-served (and authoritative), and writes flow again.
    cell.restart_server(0, 0).unwrap();
    assert_eq!(b.read(fid, 0, 32).unwrap(), b"beyond the crash");
    b.write(fid, 0, b"after the return").unwrap();
    b.fsync(fid).unwrap();
    assert_eq!(b.read(fid, 0, 32).unwrap(), b"after the return");

    // The pre-crash client reconnects too: its next server round-trip
    // runs the recovery pipeline against the new epoch.
    c.create(root, "after", 0o644).unwrap();
    assert_eq!(c.stats().recoveries, 1, "reconnection ran the recovery pipeline");
    assert_eq!(c.read(fid, 0, 32).unwrap(), b"after the return");
}

/// §2.2: restart cost tracks the *active log*, not the file-system
/// size. Two crashes of the same cell: the file system doubles between
/// them while the in-flight burst stays fixed, so the second recovery
/// scan must not scale with the accumulated data.
#[test]
fn recovery_scan_tracks_active_log_not_fs_size() {
    let cell = Cell::builder().servers(1).disk_blocks(32 * 1024).log_blocks(512).build().unwrap();
    cell.create_volume(0, common::VOL, "v").unwrap();
    let c = cell.new_client();
    let root = c.root(VolumeId(1)).unwrap();

    let grow = |tag: &str, n: u32| {
        for i in 0..n {
            let f = c.create(root, &format!("{tag}{i}"), 0o644).unwrap();
            c.write(f.fid, 0, &vec![i as u8; 16 * 1024]).unwrap();
            c.fsync(f.fid).unwrap();
        }
    };

    // Phase 1: ~1 MiB of data, then a fixed small burst right before
    // the crash.
    grow("one-", 64);
    grow("one-hot-", 2);
    cell.crash_server(0);
    let r1 = cell.restart_server(0, 0).unwrap();

    // Phase 2: double the file system, identical burst, crash again.
    grow("two-", 64);
    grow("two-hot-", 2);
    cell.crash_server(0);
    let r2 = cell.restart_server(0, 0).unwrap();

    // Each phase shipped ~66 files * 4 pages = 264+ data blocks; by the
    // second crash the aggregate holds twice that. The replay scan stays
    // bounded by the (checkpointed) active log in both runs and does not
    // grow with the aggregate.
    assert!(!r1.formatted && !r2.formatted);
    assert!(r1.scanned_blocks <= 512, "scan bounded by the log region, got {}", r1.scanned_blocks);
    assert!(r2.scanned_blocks <= 512, "scan bounded by the log region, got {}", r2.scanned_blocks);
    assert!(
        r2.scanned_blocks < 264,
        "scan ({} blocks) must be smaller than even one phase's data, let alone two",
        r2.scanned_blocks
    );
    // The client survived two restarts worth of epoch bumps.
    assert_eq!(cell.server(0).epoch(), 3);
    c.create(root, "post", 0o644).unwrap();
    assert_eq!(c.stats().recoveries, 2);
    let f = c.lookup(root, "one-0").unwrap();
    assert_eq!(c.read(f.fid, 0, 8).unwrap(), vec![0u8; 8]);
}

/// Tokens reestablished during grace keep their meaning: a second
/// client's conflicting claim is silently dropped, and the survivor's
/// data-version check keeps its cache.
#[test]
fn reestablishment_preserves_cached_data_when_version_matches() {
    // No background flusher: after the fsync below nothing is dirty and
    // nothing is in flight, so the crash deterministically finds a clean
    // cache and recovery takes the revalidation path (a flusher mid-pass
    // could re-dirty pages when the crash cuts its store-back short).
    let cell = common::one_server_cell();
    let a = common::no_flush_client(&cell);
    let root = a.root(VolumeId(1)).unwrap();
    let fid = common::durable_file(&a, "stable", &vec![7u8; 8192]);
    // Warm A's cache: valid pages + cached DataVersion to revalidate.
    assert_eq!(a.read(fid, 0, 8192).unwrap(), vec![7u8; 8192]);
    assert_eq!(a.dirty_pages(fid), 0, "fsync left nothing dirty");

    cell.crash_server(0);
    cell.restart_server(0, 10_000_000).unwrap();

    let before = cell.net().stats();
    // Trigger recovery with a namespace op, then re-read the file: the
    // DataVersion still matches, so the pages must come from cache, not
    // a refetch.
    a.create(root, "poke", 0o644).unwrap();
    assert_eq!(a.read(fid, 0, 8192).unwrap(), vec![7u8; 8192]);
    let st = a.stats();
    assert!(st.reval_kept > 0, "matching DataVersion keeps the cache");
    let fetched = cell.net().stats().since(&before).by_label.get("FetchData").copied();
    assert_eq!(fetched.unwrap_or(0), 0, "no data refetch after revalidation");
}

/// POSIX contract behind the new `Fsync` RPC: fsync on a freshly
/// created, never-written file must make the *create* durable. There is
/// no store-back whose group commit would force the log, so the client
/// has to ask the server explicitly.
#[test]
fn fsync_of_empty_file_survives_crash() {
    let cell = common::one_server_cell();
    let a = cell.new_client();
    let root = a.root(VolumeId(1)).unwrap();
    let f = a.create(root, "empty", 0o644).unwrap();
    a.fsync(f.fid).unwrap();

    cell.crash_server(0);
    cell.restart_server(0, 0).unwrap();

    let b = cell.new_client();
    let root = b.root(VolumeId(1)).unwrap();
    let got = b.lookup(root, "empty").unwrap();
    assert_eq!(got.fid, f.fid, "the fsync'd create survived the crash");
    assert_eq!(got.length, 0);
}
