//! Write-behind pipeline tests: coalesced extent store-backs, the
//! background flusher, and their interaction with tokens/revocations.

use dfs_client::{WritebackConfig, STORE_EXTENT_PAGES};
use dfs_core::Cell;
use dfs_types::VolumeId;

mod common;
use std::sync::Arc;
use std::time::{Duration, Instant};

const PAGE: usize = dfs_client::PAGE_SIZE;

fn cell() -> Cell {
    let cell = Cell::builder().servers(1).latency_us(10).build().unwrap();
    cell.create_volume(0, VolumeId(1), "wb").unwrap();
    cell
}

/// Waits (bounded) for a condition driven by the background flusher.
fn wait_for(mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + Duration::from_secs(10);
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    false
}

#[test]
fn sequential_write_coalesces_into_few_rpcs() {
    let cell = cell();
    // No flusher: the fsync must do all the store-back work, making the
    // RPC counts deterministic.
    let c = common::no_flush_client(&cell);
    let root = c.root(VolumeId(1)).unwrap();
    let f = c.create(root, "seq", 0o644).unwrap();
    for p in 0..64u64 {
        c.write(f.fid, p * PAGE as u64, &[p as u8; PAGE]).unwrap();
    }
    let before = cell.net().stats();
    c.fsync(f.fid).unwrap();
    let d = cell.net().stats().since(&before);
    // 64 pages = 4 extents of STORE_EXTENT_PAGES, all in one vec RPC.
    assert_eq!(d.by_label.get("StoreDataVec").copied().unwrap_or(0), 1);
    assert_eq!(d.by_label.get("StoreData").copied().unwrap_or(0), 0);
    let st = c.stats();
    assert_eq!(st.storeback_rpcs, 1);
    assert_eq!(st.storeback_extents, (64 / STORE_EXTENT_PAGES) as u64);
    assert_eq!(st.storeback_pages, 64);
    assert_eq!(c.dirty_pages(f.fid), 0);
    // A second client observes every page.
    let r = cell.new_client();
    for p in (0..64u64).step_by(17) {
        assert_eq!(r.read(f.fid, p * PAGE as u64, PAGE).unwrap(), vec![p as u8; PAGE]);
    }
}

#[test]
fn sparse_dirty_set_ships_one_extent_per_run() {
    let cell = cell();
    let c = common::no_flush_client(&cell);
    let root = c.root(VolumeId(1)).unwrap();
    let f = c.create(root, "sparse", 0o644).unwrap();
    // Three discontiguous runs: {0,1,2}, {10}, {20,21}.
    for p in [0u64, 1, 2, 10, 20, 21] {
        c.write(f.fid, p * PAGE as u64, &[(p + 1) as u8; PAGE]).unwrap();
    }
    let before = cell.net().stats();
    c.fsync(f.fid).unwrap();
    let d = cell.net().stats().since(&before);
    assert_eq!(d.by_label.get("StoreDataVec").copied().unwrap_or(0), 1);
    let st = c.stats();
    assert_eq!(st.storeback_extents, 3, "one extent per contiguous run");
    assert_eq!(st.storeback_pages, 6);
    // Holes stay holes; written pages read back.
    let r = cell.new_client();
    assert_eq!(r.read(f.fid, 10 * PAGE as u64, PAGE).unwrap(), vec![11u8; PAGE]);
    assert_eq!(r.read(f.fid, 5 * PAGE as u64, PAGE).unwrap(), vec![0u8; PAGE]);
    assert_eq!(r.read(f.fid, 21 * PAGE as u64, PAGE).unwrap(), vec![22u8; PAGE]);
}

#[test]
fn extent_straddling_eof_stores_partial_last_page() {
    let cell = cell();
    let c = common::no_flush_client(&cell);
    let root = c.root(VolumeId(1)).unwrap();
    let f = c.create(root, "tail", 0o644).unwrap();
    // One full page plus 100 bytes: the second page is dirty but only
    // 100 bytes of it are inside the file.
    let mut data = vec![5u8; PAGE + 100];
    data[PAGE..].fill(6);
    c.write(f.fid, 0, &data).unwrap();
    c.fsync(f.fid).unwrap();
    let r = cell.new_client();
    let st = r.getattr(f.fid).unwrap();
    assert_eq!(st.length, (PAGE + 100) as u64);
    assert_eq!(r.read(f.fid, 0, PAGE).unwrap(), vec![5u8; PAGE]);
    // Reads clamp at EOF: exactly the 100 tail bytes come back.
    assert_eq!(r.read(f.fid, PAGE as u64, PAGE).unwrap(), vec![6u8; 100]);
}

#[test]
fn concurrent_revocation_mid_flush_keeps_writers_consistent() {
    let cell = cell();
    let c1 = cell.new_client();
    let c2 = cell.new_client();
    let root = c1.root(VolumeId(1)).unwrap();
    let f = c1.create(root, "contended", 0o644).unwrap();
    // c1 dirties a large range, then both clients write the same file
    // concurrently while c1's store-back is racing c2's token
    // acquisition (which revokes c1's write tokens and forces
    // revocation-class store-backs mid-flush).
    for p in 0..32u64 {
        c1.write(f.fid, p * PAGE as u64, &[1u8; PAGE]).unwrap();
    }
    let c1b = c1.clone();
    let fid = f.fid;
    let flusher = std::thread::spawn(move || c1b.fsync(fid).unwrap());
    for p in 0..32u64 {
        c2.write(fid, p * PAGE as u64, &[2u8; PAGE]).unwrap();
    }
    flusher.join().unwrap();
    c1.fsync(fid).unwrap();
    c2.fsync(fid).unwrap();
    assert_eq!(c1.dirty_pages(fid), 0);
    assert_eq!(c2.dirty_pages(fid), 0);
    // Every page holds one writer's value in full (page writes are
    // atomic under the token protocol — no torn pages).
    let r = cell.new_client();
    for p in 0..32u64 {
        let page = r.read(fid, p * PAGE as u64, PAGE).unwrap();
        assert!(
            page == vec![1u8; PAGE] || page == vec![2u8; PAGE],
            "page {p} torn: starts {:?}",
            &page[..4]
        );
    }
}

#[test]
fn flusher_trickles_dirty_pages_out_under_budget() {
    let cell = cell();
    let c = cell.new_client_writeback(WritebackConfig {
        flush_interval: Duration::from_millis(1),
        dirty_budget_pages: 8,
        ..WritebackConfig::default()
    });
    let root = c.root(VolumeId(1)).unwrap();
    let f = c.create(root, "trickle", 0o644).unwrap();
    for p in 0..48u64 {
        c.write(f.fid, p * PAGE as u64, &[3u8; PAGE]).unwrap();
    }
    // No fsync: the background flusher alone must drain the dirty set.
    assert!(
        wait_for(|| c.total_dirty_pages() == 0),
        "flusher failed to drain: {} dirty pages left",
        c.total_dirty_pages()
    );
    let st = c.stats();
    assert!(st.flusher_passes > 0, "flusher never ran");
    let r = cell.new_client();
    assert_eq!(r.read(f.fid, 47 * PAGE as u64, PAGE).unwrap(), vec![3u8; PAGE]);
}

#[test]
fn backpressure_forces_synchronous_flush_over_double_budget() {
    let cell = cell();
    let c = cell.new_client_writeback(WritebackConfig {
        // A long interval so the writer outruns the timer-driven flusher
        // and hits the synchronous backpressure path deterministically.
        flush_interval: Duration::from_secs(30),
        dirty_budget_pages: 4,
        ..WritebackConfig::default()
    });
    let root = c.root(VolumeId(1)).unwrap();
    let f = c.create(root, "pressure", 0o644).unwrap();
    for p in 0..64u64 {
        c.write(f.fid, p * PAGE as u64, &[4u8; PAGE]).unwrap();
    }
    let st = c.stats();
    assert!(st.backpressure_flushes > 0, "writer never paid for a flush");
    // The budget bounds the dirty set the whole way through.
    assert!(c.total_dirty_pages() <= 2 * 4 + STORE_EXTENT_PAGES as u64);
    c.shutdown().unwrap();
}

#[test]
fn shutdown_flushes_remaining_dirty_data() {
    let cell = cell();
    let c = cell.new_client_writeback(WritebackConfig {
        // Effectively-idle flusher: shutdown itself must do the flush.
        flush_interval: Duration::from_secs(30),
        ..WritebackConfig::default()
    });
    let root = c.root(VolumeId(1)).unwrap();
    let f = c.create(root, "parting", 0o644).unwrap();
    c.write(f.fid, 0, b"do not lose me").unwrap();
    c.write(f.fid, 5 * PAGE as u64, &[8u8; 64]).unwrap();
    assert!(c.total_dirty_pages() > 0);
    c.shutdown().unwrap();
    assert_eq!(c.total_dirty_pages(), 0);
    let r = cell.new_client();
    assert_eq!(r.read(f.fid, 0, 14).unwrap(), b"do not lose me");
    assert_eq!(r.read(f.fid, 5 * PAGE as u64, 64).unwrap(), vec![8u8; 64]);
    // Shutdown is idempotent.
    c.shutdown().unwrap();
}

#[test]
fn legacy_config_matches_pre_pipeline_rpc_shape() {
    let cell = cell();
    let c = cell.new_client_writeback(WritebackConfig::legacy());
    let root = c.root(VolumeId(1)).unwrap();
    let f = c.create(root, "legacy", 0o644).unwrap();
    for p in 0..16u64 {
        c.write(f.fid, p * PAGE as u64, &[9u8; PAGE]).unwrap();
    }
    let before = cell.net().stats();
    c.fsync(f.fid).unwrap();
    let d = cell.net().stats().since(&before);
    // One flat StoreData per dirty page, never the vec RPC.
    assert_eq!(d.by_label.get("StoreData").copied().unwrap_or(0), 16);
    assert_eq!(d.by_label.get("StoreDataVec").copied().unwrap_or(0), 0);
    let r = cell.new_client();
    assert_eq!(r.read(f.fid, 15 * PAGE as u64, PAGE).unwrap(), vec![9u8; PAGE]);
}

#[test]
fn writer_during_flush_loses_no_update() {
    let cell = cell();
    let c = cell.new_client_writeback(WritebackConfig {
        flush_interval: Duration::from_millis(1),
        dirty_budget_pages: 2,
        ..WritebackConfig::default()
    });
    let root = c.root(VolumeId(1)).unwrap();
    let f = c.create(root, "racy", 0o644).unwrap();
    // Rewrite page 0 many times while the flusher is aggressively
    // storing it back: the final value must win (write_seq check).
    let c2: Arc<_> = c.clone();
    let fid = f.fid;
    let writer = std::thread::spawn(move || {
        for i in 0u8..100 {
            c2.write(fid, 0, &[i; PAGE]).unwrap();
            if i % 8 == 0 {
                std::thread::sleep(Duration::from_micros(200));
            }
        }
    });
    writer.join().unwrap();
    c.fsync(fid).unwrap();
    let r = cell.new_client();
    assert_eq!(r.read(fid, 0, PAGE).unwrap(), vec![99u8; PAGE]);
}
