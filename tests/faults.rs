//! Fault-matrix tests (ISSUE 9): the deterministic fault-injection
//! plane (`rpc::faults`) swept over the protocols that must absorb
//! message loss — write-behind flushing, token revocation, and live
//! volume migration. Every scenario asserts the two invariants the
//! paper's protocols promise: **zero lost updates** (every acknowledged
//! write is readable afterwards) and **exactly-once effect** (retries
//! and duplicate deliveries never double-apply).

use decorum_dfs::rpc::{Addr, FaultAction, FaultRule, FaultSchedule};
use decorum_dfs::types::VolumeId;

mod common;

/// Write-behind flush vs. lossy transport: store-back requests are
/// dropped, their replies are dropped (the at-least-once hazard: the
/// side effect lands, the ack does not), and survivors are delayed.
/// The client's retry loop must push every dirty page through; the
/// reply-less store that is retried must land idempotently.
#[test]
fn writeback_flush_survives_drop_delay_and_lost_replies() {
    let cell = common::one_server_cell();
    // No background flusher: the test triggers the flush itself, so the
    // RPC sequence the schedule sees is deterministic.
    let a = common::no_flush_client(&cell);
    let root = a.root(VolumeId(1)).unwrap();
    let mut files = Vec::new();
    for i in 0..8u32 {
        let f = a.create(root, &format!("f{i}"), 0o644).unwrap();
        a.write(f.fid, 0, format!("payload-{i:02}").as_bytes()).unwrap();
        files.push(f.fid);
    }

    // The matrix, in rule order (first match wins): the first two
    // store-backs vanish outright, the next loses only its reply, and
    // half of the rest crawl through a 200 µs delay.
    let storm = |label: &'static str| {
        FaultSchedule::seeded(11)
            .rule(FaultRule::on(FaultAction::Drop).label(label).limit(2))
            .rule(FaultRule::on(FaultAction::DropReply).label(label).limit(1))
            .rule(FaultRule::on(FaultAction::Delay(200)).label(label).prob(50))
    };
    // Single-extent store-backs go out as `StoreData`.
    cell.net().set_fault_schedule(storm("StoreData"));

    a.store_back_all().unwrap();
    for &fid in &files {
        a.fsync(fid).unwrap();
    }
    cell.net().clear_faults();

    // Zero lost updates: a fresh client (no shared cache) reads every
    // acknowledged byte back.
    let b = cell.new_client();
    for (i, &fid) in files.iter().enumerate() {
        assert_eq!(
            b.read(fid, 0, 16).unwrap(),
            format!("payload-{i:02}").as_bytes(),
            "file {i} lost an update under the fault storm"
        );
    }
    let st = a.stats();
    assert!(st.transport_retries >= 3, "dropped calls were retried, got {}", st.transport_retries);
    assert_eq!(st.unavailable_giveups, 0, "the budget absorbed the storm");
}

/// Token revocation vs. duplicate delivery: the revocation that makes
/// a reader see a write-behind writer's bytes is delivered twice. The
/// handler must be idempotent — the dirty pages are stored back exactly
/// once, and the second delivery finds nothing to do.
#[test]
fn revocation_is_exactly_once_under_duplicate_delivery() {
    let cell = common::one_server_cell();
    let a = common::no_flush_client(&cell);
    let b = cell.new_client();
    let root = a.root(VolumeId(1)).unwrap();
    let f = a.create(root, "contested", 0o644).unwrap();
    a.write(f.fid, 0, b"only in A's cache").unwrap();
    assert!(a.dirty_pages(f.fid) > 0, "the update must still be write-behind");

    // Duplicate every revocation aimed at A, whichever shape it takes.
    let to_a = Addr::Client(a.id());
    cell.net().set_fault_schedule(
        FaultSchedule::seeded(23)
            .rule(FaultRule::on(FaultAction::Duplicate).label("RevokeToken").to(to_a))
            .rule(FaultRule::on(FaultAction::Duplicate).label("RevokeVec").to(to_a)),
    );

    // B's read forces the server to revoke A's write token; A must
    // store its dirty page first, so B sees the write-behind bytes.
    assert_eq!(b.read(f.fid, 0, 32).unwrap(), b"only in A's cache");
    assert!(cell.net().faults_injected() >= 1, "a revocation was duplicated");
    cell.net().clear_faults();

    // Both deliveries run on the pool; the first reply wins the race
    // back to B's read, so wait for the duplicate to land too.
    for _ in 0..200 {
        if a.stats().revocations >= 2 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    let st = a.stats();
    assert!(st.revocations >= 2, "both deliveries arrived, got {}", st.revocations);
    assert_eq!(st.revocation_stores, 1, "the dirty page was stored exactly once");

    // The system stays live and consistent after the duplicate: both
    // clients still agree, and A can write again.
    a.write(f.fid, 0, b"A writes once more").unwrap();
    a.fsync(f.fid).unwrap();
    assert_eq!(b.read(f.fid, 0, 32).unwrap(), b"A writes once more");
}

/// Live migration vs. a flaky client-side partition: while a volume
/// moves between servers, a bounded storm drops calls from the client.
/// The migration itself (server-to-server traffic) is unaffected; the
/// client retries through the storm, chases `WrongServer` to the new
/// home, and no acknowledged write is lost.
#[test]
fn live_migration_survives_client_partition() {
    let cell = common::cell(2);
    cell.create_volume(0, VolumeId(7), "mv").unwrap();
    let c = cell.new_client();
    let root = c.root(VolumeId(7)).unwrap();
    let mut files = Vec::new();
    for i in 0..6u32 {
        let f = c.create(root, &format!("pre{i}"), 0o644).unwrap();
        c.write(f.fid, 0, format!("before-{i}").as_bytes()).unwrap();
        c.fsync(f.fid).unwrap();
        files.push((f.fid, format!("before-{i}")));
    }

    // A healing partition: the client loses up to 6 of its next calls
    // (40% each), in both directions of its file traffic. Admin and
    // server-to-server calls match no rule and sail through.
    let me = Addr::Client(c.id());
    cell.net().set_fault_schedule(
        FaultSchedule::seeded(5)
            .rule(FaultRule::on(FaultAction::Drop).from(me).prob(40).limit(6)),
    );

    cell.move_volume(0, 1, VolumeId(7)).unwrap();

    // Work through the storm against the volume's new home.
    for i in 0..6u32 {
        let f = c.create(root, &format!("post{i}"), 0o644).unwrap();
        c.write(f.fid, 0, format!("after-{i}").as_bytes()).unwrap();
        c.fsync(f.fid).unwrap();
        files.push((f.fid, format!("after-{i}")));
    }
    cell.net().clear_faults();
    assert_eq!(cell.vldb().lookup(VolumeId(7)).unwrap(), cell.server(1).id());

    // Zero lost updates across the move + partition.
    let fresh = cell.new_client();
    for (fid, want) in &files {
        assert_eq!(fresh.read(*fid, 0, 16).unwrap(), want.as_bytes());
    }
}

/// The determinism contract: the same seed over the same
/// single-threaded call sequence injects the same faults and leaves
/// the client with the same retry counts.
#[test]
fn same_seed_replays_the_same_fault_sequence() {
    let run = |seed: u64| -> (u64, u64) {
        let cell = common::one_server_cell();
        let a = common::no_flush_client(&cell);
        let root = a.root(VolumeId(1)).unwrap();
        let mut files = Vec::new();
        for i in 0..8u32 {
            let f = a.create(root, &format!("f{i}"), 0o644).unwrap();
            a.write(f.fid, 0, format!("d{i}").as_bytes()).unwrap();
            files.push(f.fid);
        }
        cell.net().set_fault_schedule(
            FaultSchedule::seeded(seed)
                .rule(FaultRule::on(FaultAction::Drop).label("StoreData").prob(50)),
        );
        a.store_back_all().unwrap();
        cell.net().clear_faults();
        for (i, &fid) in files.iter().enumerate() {
            assert_eq!(a.read(fid, 0, 8).unwrap(), format!("d{i}").as_bytes());
        }
        (cell.net().faults_injected(), a.stats().transport_retries)
    };
    let first = run(99);
    let second = run(99);
    assert_eq!(first, second, "same seed must replay identically");
    assert!(first.0 >= 1, "the 50% drop rule fired at least once");
    let other = run(1234);
    assert!(other.0 >= 1);
}
