//! Fleet-layer tests: volume-sharded multi-server cells, cross-server
//! request routing (`WrongServer` hints + forwarding), and live volume
//! migration (ISSUE 6; §2.1/§3.4 of the paper).

use decorum_dfs::rpc::{Addr, CallClass, Request, Response};
use decorum_dfs::types::{ClientId, DfsError, VolumeId};
use decorum_dfs::Fleet;

mod common;

/// (a) A client keeps reading and writing through a redirect: after the
/// volume moves, its cached location is stale, the old owner answers
/// `WrongServer`, and the client chases the hint transparently.
#[test]
fn read_write_through_a_redirect() {
    let fleet = common::fleet(2); // the volume lands on slot 0
    let c = fleet.cell().new_client();
    let root = c.root(VolumeId(1)).unwrap();
    let f = c.create(root, "f", 0o644).unwrap();
    c.write(f.fid, 0, b"before the move").unwrap();
    c.fsync(f.fid).unwrap();

    fleet.move_volume(VolumeId(1), 1).unwrap();
    assert_eq!(fleet.server_of(VolumeId(1)).unwrap(), 1);

    // The client's location cache still points at slot 0; both a write
    // and a read go through anyway.
    c.write(f.fid, 0, b"after the move!").unwrap();
    c.fsync(f.fid).unwrap();
    assert_eq!(c.read(f.fid, 0, 32).unwrap(), b"after the move!");
    assert!(c.stats().wrong_server_redirects >= 1, "client chased a hint");
    assert!(
        fleet.cell().server(0).stats().wrong_server_redirects >= 1,
        "old owner answered WrongServer"
    );
    // A fresh client resolves straight through the VLDB: no redirect.
    let b = fleet.cell().new_client();
    assert_eq!(b.read(f.fid, 0, 32).unwrap(), b"after the move!");
    assert_eq!(b.stats().wrong_server_redirects, 0);
}

/// (b) A stale location cache costs exactly one extra hop: the first
/// operation after a move follows one `WrongServer` hint and succeeds —
/// no second redirect, no VLDB storm, no error surfaced to the caller.
#[test]
fn stale_cache_resolves_in_one_retry() {
    let fleet = common::fleet(3); // the volume lands on slot 0
    let c = fleet.cell().new_client();
    let root = c.root(VolumeId(1)).unwrap();
    let f = c.create(root, "f", 0o644).unwrap();
    c.write(f.fid, 0, b"x").unwrap();
    c.fsync(f.fid).unwrap();

    fleet.move_volume(VolumeId(1), 2).unwrap();

    let before = c.stats().wrong_server_redirects;
    // An operation the client cannot serve from cache (the move's write
    // quiesce pulled back its directory-write guarantee): it must talk
    // to a server, and the first server it picks is the stale one.
    c.create(root, "g", 0o644).unwrap();
    let after = c.stats().wrong_server_redirects;
    assert_eq!(after - before, 1, "stale cache costs exactly one redirect");

    // And the hint stuck: the next operation goes straight through.
    c.create(root, "h", 0o644).unwrap();
    assert_eq!(c.stats().wrong_server_redirects, after);
}

/// (c) Tokens survive a live move with zero lost updates: a client with
/// dirty write-behind pages and live tokens keeps both guarantees across
/// the migration — the dirty data is stored back under the move's write
/// quiesce, the surviving tokens are installed at the target with their
/// ids intact, and no recovery pipeline runs.
#[test]
fn tokens_survive_live_move_with_zero_lost_updates() {
    let fleet = common::fleet(2); // the volume lands on slot 0
    // No background flusher: the second write is deterministically still
    // dirty in the client when the move begins.
    let a = common::no_flush_client(fleet.cell());
    let root = a.root(VolumeId(1)).unwrap();
    let f = a.create(root, "f", 0o644).unwrap();
    a.write(f.fid, 0, b"acked and durable").unwrap();
    a.fsync(f.fid).unwrap();
    a.write(f.fid, 0, b"dirty when moved!").unwrap();
    assert!(a.dirty_pages(f.fid) > 0, "update must still be write-behind");

    fleet.move_volume(VolumeId(1), 1).unwrap();

    // The target imported A's surviving tokens rather than making A
    // start over.
    let imported = fleet.cell().server(1).token_manager().stats().imported;
    assert!(imported > 0, "surviving tokens shipped to the target (got {imported})");

    // Zero lost updates: the dirty page was stored back during the
    // move's write quiesce and travelled with the volume.
    let b = fleet.cell().new_client();
    assert_eq!(b.read(f.fid, 0, 32).unwrap(), b"dirty when moved!");
    assert_eq!(a.read(f.fid, 0, 32).unwrap(), b"dirty when moved!");

    // Transparent means transparent: no crash-recovery machinery ran.
    let st = a.stats();
    assert_eq!(st.recoveries, 0, "a live move is not a crash");
    assert_eq!(st.tokens_reestablished, 0, "tokens survived, not re-granted");
}

/// (d) Forwarding to a crashed owner surfaces `Crashed` (not a hang, not
/// a bogus redirect), and once the owner restarts the client runs the
/// ISSUE-5 recovery pipeline and completes its operation.
#[test]
fn forward_to_crashed_owner_surfaces_crashed_then_recovers() {
    let fleet = Fleet::start(2).unwrap();
    fleet.create_volume(VolumeId(7), "mine").unwrap(); // slot 0
    fleet.create_volume(VolumeId(8), "other").unwrap(); // slot 1
    let cell = fleet.cell();
    let a = cell.new_client();
    let root = a.root(VolumeId(7)).unwrap();
    let f = a.create(root, "f", 0o644).unwrap();
    a.write(f.fid, 0, b"pre-crash").unwrap();
    a.fsync(f.fid).unwrap();

    cell.crash_server(0);

    // A token-free one-shot misdirected at the healthy server is
    // *forwarded* to the owner; the owner is down, so the proxy reports
    // `Crashed` instead of a redirect the caller would chase in vain.
    let healthy = cell.server(1).id();
    let resp = cell
        .net()
        .call(
            Addr::Client(ClientId(999)),
            Addr::Server(healthy),
            None,
            CallClass::Normal,
            Request::GetRoot { volume: VolumeId(7) },
        )
        .unwrap();
    assert_eq!(resp, Response::Err(DfsError::Crashed));
    assert!(cell.server(1).stats().forwards >= 1, "the proxy did try the owner");

    // The owner comes back with a grace window; A's next operation runs
    // the recovery pipeline (epoch probe, token reestablishment) and
    // succeeds.
    cell.restart_server(0, 10_000_000).unwrap();
    a.create(root, "post-crash", 0o644).unwrap();
    let st = a.stats();
    assert_eq!(st.recoveries, 1, "exactly one recovery pass");
    assert!(st.tokens_reestablished > 0, "A re-registered its token set");
    assert_eq!(a.read(f.fid, 0, 16).unwrap(), b"pre-crash");
}

/// The fleet's load monitor end-to-end: skewed traffic, one `rebalance`
/// call, and the hot volume lands on the cold server while every client
/// operation keeps succeeding.
#[test]
fn rebalance_migrates_hot_volume_under_live_traffic() {
    let fleet = Fleet::start(2).unwrap();
    fleet.create_volume(VolumeId(1), "hot").unwrap(); // slot 0
    fleet.create_volume(VolumeId(2), "cold").unwrap(); // slot 1
    fleet.create_volume(VolumeId(3), "warm").unwrap(); // slot 0
    let c = fleet.cell().new_client();
    let hot = c.root(VolumeId(1)).unwrap();
    for i in 0..20 {
        let f = c.create(hot, &format!("f{i}"), 0o644).unwrap();
        c.write(f.fid, 0, format!("payload {i}").as_bytes()).unwrap();
        c.fsync(f.fid).unwrap();
    }
    // A trickle at the co-hosted warm volume: without it, shipping the
    // hot volume away would merely swap which server is overloaded, and
    // the monitor (correctly) declines such a move.
    let warm = c.root(VolumeId(3)).unwrap();
    let w = c.create(warm, "w", 0o644).unwrap();
    c.write(w.fid, 0, b"warm").unwrap();
    c.fsync(w.fid).unwrap();
    let moved = fleet.rebalance().unwrap();
    assert_eq!(moved, Some((VolumeId(1), 0, 1)));
    // All data intact after the migration, reads served by the target.
    for i in 0..20 {
        let f = c.lookup(hot, &format!("f{i}")).unwrap();
        assert_eq!(c.read(f.fid, 0, 32).unwrap(), format!("payload {i}").as_bytes());
    }
    // Balanced now: a second pass finds nothing worth moving.
    assert_eq!(fleet.rebalance().unwrap(), None);
}

/// A forwarded one-shot carries the *caller's* authenticated principal
/// to the owner, so access checks run against the real user: alice's
/// misdirected `Readlink` succeeds in a `require_auth` cell (a plain
/// unauthenticated re-send would die with `AuthenticationFailed`), and
/// bob cannot launder an ACL check by aiming his call at a non-owner.
#[test]
fn forwarded_one_shots_carry_the_callers_principal() {
    use decorum_dfs::types::{Acl, AclEntry, Principal, Rights};
    use decorum_dfs::vfs::SetAttrs;
    use decorum_dfs::Cell;

    let cell = Cell::builder().servers(2).require_auth(true).build().unwrap();
    cell.add_user(0, 42);
    cell.add_user(100, 1111);
    cell.add_user(200, 2222);
    cell.admin_login(0, 42).unwrap();
    cell.create_volume(0, VolumeId(1), "a").unwrap();
    cell.create_volume(1, VolumeId(2), "b").unwrap();

    let admin = cell.new_client();
    admin.login(0, 42).unwrap();
    let root = admin.root(VolumeId(1)).unwrap();
    admin.setattr(root, &SetAttrs { mode: Some(0o777), ..Default::default() }).unwrap();

    let alice = cell.new_client();
    alice.login(100, 1111).unwrap();
    let ln = alice.symlink(root, "ln", "the-target").unwrap();
    // Alice only: every other principal gets no rights at all.
    let mut acl = Acl::new();
    acl.push(AclEntry::allow(Principal::User(100), Rights::ALL));
    alice.set_acl(ln.fid, &acl).unwrap();

    // Aim the one-shot at the server that does NOT host volume 1; it
    // forwards to the owner rather than redirecting.
    let wrong = cell.server(1).id();
    let net = cell.net();
    let t_alice = net.auth().login(100, 1111).unwrap();
    let resp = net
        .call(
            Addr::Client(ClientId(900)),
            Addr::Server(wrong),
            Some(t_alice),
            CallClass::Normal,
            Request::Readlink { fid: ln.fid },
        )
        .unwrap();
    assert_eq!(resp, Response::Target("the-target".into()));

    let t_bob = net.auth().login(200, 2222).unwrap();
    let resp = net
        .call(
            Addr::Client(ClientId(901)),
            Addr::Server(wrong),
            Some(t_bob),
            CallClass::Normal,
            Request::Readlink { fid: ln.fid },
        )
        .unwrap();
    assert_eq!(resp, Response::Err(DfsError::PermissionDenied), "bob must not bypass the ACL");
    assert!(cell.server(1).stats().forwards >= 2, "both calls went through the proxy");
}

/// A move target must never serve — let alone accept writes into — the
/// phase-1 snapshot: the shipped copy stays *staged* (still redirected)
/// until the token handover promotes it, and an aborted move discards
/// it so no stale fork of the volume survives.
#[test]
fn staged_move_copy_is_invisible_and_discards_on_abort() {
    let fleet = common::fleet(2); // the volume lands on slot 0
    let cell = fleet.cell();
    let c = cell.new_client();
    let root = c.root(VolumeId(1)).unwrap();
    let f = c.create(root, "f", 0o644).unwrap();
    c.write(f.fid, 0, b"phase-1 state").unwrap();
    c.fsync(f.fid).unwrap();

    // Hand-drive a move's phase 1: full dump at the owner, restore at
    // the would-be target.
    let admin = Addr::Client(ClientId(999));
    let owner = cell.server(0).id();
    let target = cell.server(1).id();
    let net = cell.net();
    let dump = match net
        .call(
            admin,
            Addr::Server(owner),
            None,
            CallClass::Normal,
            Request::VolDump { volume: VolumeId(1), since_version: 0 },
        )
        .unwrap()
    {
        Response::Dump(d) => d,
        other => panic!("{other:?}"),
    };
    net.call(
        admin,
        Addr::Server(target),
        None,
        CallClass::Normal,
        Request::VolRestore { dump, read_only: false },
    )
    .unwrap()
    .into_result()
    .unwrap();

    // The VLDB still names the owner, so a stale-hinted read aimed at
    // the target is redirected — and a write cannot fork the volume.
    let resp = net
        .call(
            admin,
            Addr::Server(target),
            None,
            CallClass::Normal,
            Request::FetchData { fid: f.fid, offset: 0, len: 16, want: None },
        )
        .unwrap();
    assert!(
        matches!(resp, Response::WrongServer { hint, .. } if hint == owner),
        "staged copy served a read: {resp:?}"
    );
    let resp = net
        .call(
            admin,
            Addr::Server(target),
            None,
            CallClass::Normal,
            Request::StoreData { fid: f.fid, offset: 0, data: b"fork!".to_vec() },
        )
        .unwrap();
    assert!(
        matches!(resp, Response::WrongServer { .. }),
        "staged copy accepted a write: {resp:?}"
    );

    // The abort path: discarding deletes the staged copy outright.
    net.call(admin, Addr::Server(target), None, CallClass::Normal, Request::VolDiscard {
        volume: VolumeId(1),
    })
    .unwrap()
    .into_result()
    .unwrap();
    let resp = net
        .call(admin, Addr::Server(target), None, CallClass::Normal, Request::VolInfo {
            volume: VolumeId(1),
        })
        .unwrap();
    assert!(matches!(resp, Response::Err(_)), "staged copy still present: {resp:?}");

    // The owner was never disturbed, and a real move still works.
    assert_eq!(c.read(f.fid, 0, 16).unwrap(), b"phase-1 state");
    fleet.move_volume(VolumeId(1), 1).unwrap();
    assert_eq!(c.read(f.fid, 0, 16).unwrap(), b"phase-1 state");
}
